"""Differential equivalence harness: the fast path IS the reference path.

The engine's fast dispatch loop (calendar buckets, same-instant tail
FIFO, pooled events, fused process wake-ups -- see
``repro.sim.fastpath``) rewrites the hottest, most behaviour-critical
code in the repo.  This harness is the proof obligation that it never
changes behaviour:

1. every committed golden scenario runs through BOTH paths and must
   produce the committed digest byte-for-byte -- event stream, float
   timestamps, and telemetry timeline alike (parametrized over
   ``SCENARIOS``, so a newly committed golden is covered automatically);
2. the same holds with the sanitizer forced on, with zero races -- the
   fast path introduces no sanitizer blind spots;
3. Hypothesis drives randomly generated kernel programs through both
   paths and compares the full dispatch order;
4. metamorphic checks: commutative same-instant submissions conserve
   totals, and deliberately ambiguous schedules are still flagged on
   the fast path (including zero-delay events, which the fast path
   routes through the tail queue rather than the heap).
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.fastpath import fastpath_default, forced_path
from repro.sim.resources import Server, SlotChannel

from tests.test_golden_traces import GOLDEN_DIR, SCENARIOS, digest


# -- 1: goldens through both paths --------------------------------------------

@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_identical_on_both_paths(name):
    """Reference digest == fast digest == committed golden, including
    the telemetry timeline hash when the scenario exports one."""
    golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    with forced_path(True):
        fast = digest(SCENARIOS[name]())
    with forced_path(False):
        ref = digest(SCENARIOS[name]())
    assert fast == golden, f"{name}: fast path diverged from golden"
    assert ref == golden, f"{name}: reference path diverged from golden"


def _run_sanitized(name, fast):
    """One golden scenario with every engine forced onto ``fast`` with
    the sanitizer on (the scenario builders take no knobs by design)."""
    orig = Engine.__init__

    def forced(self, sanitize=False, fastpath=None):
        orig(self, sanitize=True, fastpath=fastpath)

    Engine.__init__ = forced
    try:
        with forced_path(fast):
            return SCENARIOS[name]()
    finally:
        Engine.__init__ = orig


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_fast_path_sanitized(name):
    """Satellite CI gate: goldens through the fast path with the
    sanitizer forced on -- byte-identical, zero races."""
    golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    result = _run_sanitized(name, fast=True)
    engine = result.iosys.engine
    assert engine.fastpath is True
    assert engine.sanitize is True
    assert engine.races == [], "\n".join(r.format() for r in engine.races)
    assert digest(result) == golden


# -- 2: kernel-level differential fuzz ----------------------------------------

def _dispatch_log(fast, program):
    """Run ``program`` (a list of per-process op lists) and return the
    exact observable dispatch order: (time, process id, op index) for
    every step every process takes, plus final now/event_count."""
    log = []
    with forced_path(fast):
        engine = Engine()
        assert engine.fastpath is fast

        shared = [engine.event() for _ in range(4)]

        def proc(pid, ops):
            for i, (kind, arg) in enumerate(ops):
                if kind == "timeout":
                    got = yield engine.timeout(arg, value=(pid, i))
                    log.append(("t", engine.now, pid, i, got))
                elif kind == "zero":
                    got = yield engine.timeout(0.0, value=(pid, i))
                    log.append(("z", engine.now, pid, i, got))
                elif kind == "trigger":
                    ev = shared[arg]
                    if not ev.triggered:
                        ev.succeed((pid, i))
                    log.append(("s", engine.now, pid, i, None))
                elif kind == "wait":
                    got = yield shared[arg]
                    log.append(("w", engine.now, pid, i, got))
                elif kind == "spawn":
                    child = engine.process(proc(100 + pid, arg))
                    got = yield child
                    log.append(("c", engine.now, pid, i, got))
            return ("ret", pid)

        for pid, ops in enumerate(program):
            engine.process(proc(pid, ops))
        # every shared event eventually fires so no process hangs
        def backstop():
            yield engine.timeout(1000.0)
            for ev in shared:
                if not ev.triggered:
                    ev.succeed("backstop")
            yield engine.timeout(1.0)

        engine.process(backstop())
        engine.run()
        log.append(("end", engine.now, engine.event_count))
    return log


_op = st.one_of(
    st.tuples(
        st.just("timeout"),
        st.floats(
            min_value=0.0, max_value=10.0,
            allow_nan=False, allow_infinity=False,
        ),
    ),
    st.tuples(st.just("zero"), st.just(0)),
    st.tuples(st.just("trigger"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("wait"), st.integers(min_value=0, max_value=3)),
)

_child = st.tuples(st.just("spawn"), st.lists(_op, max_size=3))

_program = st.lists(
    st.lists(st.one_of(_op, _child), max_size=6), min_size=1, max_size=5
)


@settings(max_examples=60, deadline=None)
@given(program=_program)
def test_random_programs_dispatch_identically(program):
    """Both loops observe the exact same (time, process, value) order on
    arbitrary interleavings of timeouts, zero-delay wake-ups, shared
    events, and child processes."""
    assert _dispatch_log(True, program) == _dispatch_log(False, program)


@settings(max_examples=25, deadline=None)
@given(
    nbytes=st.lists(
        st.integers(min_value=0, max_value=10**8), min_size=1, max_size=12
    ),
    slots=st.integers(min_value=1, max_value=5),
)
def test_slot_channel_matches_reference(nbytes, slots):
    """Resource completions (pooled on the fast path) finish at
    identical times with identical values on both paths."""

    def run(fast):
        with forced_path(fast):
            engine = Engine()
            channel = SlotChannel(engine, bandwidth=1e9, slots=slots)
            finished = []

            def submit(i, n):
                dur = yield channel.transfer(n)
                finished.append((engine.now, i, dur))

            for i, n in enumerate(nbytes):
                engine.process(submit(i, n))
            engine.run()
            return finished, channel.bytes_transferred, engine.event_count

    assert run(True) == run(False)


# -- 3: metamorphic properties ------------------------------------------------

def test_same_instant_commutative_submissions_conserve_totals():
    """Same-instant transfers submitted in any order conserve the
    totals -- bytes moved, requests served, accumulated service time,
    completion count -- even though FIFO admission legitimately
    reshuffles individual completion instants.  Both dispatch paths
    agree on every order."""
    sizes = [3 * 10**6, 1 * 10**6, 2 * 10**6, 2 * 10**6, 5 * 10**5]

    def run(order, fast):
        with forced_path(fast):
            engine = Engine()
            channel = SlotChannel(engine, bandwidth=1e9, slots=2)
            server = Server(engine, rate=2e9, concurrency=2, overhead=1e-5)
            done = []

            def one(n):
                yield channel.transfer(n)
                yield server.request(n)
                done.append(n)

            for n in order:
                engine.process(one(n))
            engine.run()
            return (
                channel.bytes_transferred,
                server.bytes_served,
                server.requests_served,
                server.busy_time,
                len(done),
            )

    orders = [sizes, list(reversed(sizes)), sorted(sizes)]
    totals = []
    for order in orders:
        fast = run(order, fast=True)
        ref = run(order, fast=False)
        assert fast == ref, "paths disagree on a permuted submission"
        totals.append(fast)
    for other in totals[1:]:
        assert other[0] == totals[0][0]  # channel bytes
        assert other[1] == totals[0][1]  # server bytes
        assert other[2] == totals[0][2]  # requests
        assert other[3] == pytest.approx(totals[0][3])  # busy_time
        assert other[4] == totals[0][4]  # completions


@pytest.mark.parametrize("fast", [True, False])
def test_sanitizer_flags_ambiguous_schedules(fast):
    """No blind spots: a genuinely ambiguous same-instant pair is
    flagged identically on both paths."""
    with forced_path(fast):
        engine = Engine(sanitize=True)

        def proc():
            first = engine.annotate(engine.timeout(1.0), "ost1", op="write")
            second = engine.annotate(
                engine.timeout(1.0), "ost1", op="truncate"
            )
            yield engine.all_of([first, second])

        engine.process(proc())
        engine.run()
    assert len(engine.races) == 1
    assert engine.races[0].resource == "ost1"


@pytest.mark.parametrize("fast", [True, False])
def test_sanitizer_sees_tail_routed_zero_delay_races(fast):
    """Zero-delay events never touch the heap on the fast path (they go
    through the tail FIFO); the sanitizer must still see them."""
    with forced_path(fast):
        engine = Engine(sanitize=True)

        def proc():
            yield engine.timeout(2.0)
            first = engine.annotate(engine.timeout(0.0), "mds", op="create")
            second = engine.annotate(engine.timeout(0.0), "mds", op="unlink")
            yield engine.all_of([first, second])

        engine.process(proc())
        engine.run()
    assert len(engine.races) == 1
    assert engine.races[0].time == pytest.approx(2.0)


# -- 4: pooling safety ---------------------------------------------------------

def test_user_held_events_are_never_recycled():
    """The refcount guard: an event the test still holds must keep its
    value forever, no matter how many pooled cycles follow it."""
    with forced_path(True):
        engine = Engine()
        held = []

        def proc():
            for i in range(50):
                tmo = engine.timeout(0.5, value=("keep", i))
                held.append(tmo)
                yield tmo
                # churn: plenty of recycle-eligible timeouts in between
                for _ in range(5):
                    yield engine.timeout(0.125)

        engine.process(proc())
        engine.run()
    assert len(held) == len({id(t) for t in held})
    for i, tmo in enumerate(held):
        assert tmo.value == ("keep", i)


def test_pool_reuse_is_real_but_bounded():
    """Unheld timeouts ARE recycled (the pool works) and the pool never
    exceeds its bound."""
    from repro.sim.fastpath import POOL_LIMIT

    with forced_path(True):
        engine = Engine()

        def proc():
            for _ in range(2000):
                yield engine.timeout(0.001)

        engine.process(proc())
        engine.run()
        # steady state: one timeout in flight at a time -> tiny pool,
        # heavy reuse
        assert 1 <= len(engine._tmo_pool) <= POOL_LIMIT
        assert engine.event_count >= 2000


# -- 5: quirk parity -----------------------------------------------------------

@pytest.mark.parametrize("fast", [True, False])
def test_backwards_until_quirk_is_identical(fast):
    """run(until < now) clamps time backwards when work is pending and
    leaves it alone when idle -- a reference-path quirk the fast path
    replicates exactly."""
    with forced_path(fast):
        engine = Engine()

        def proc():
            yield engine.timeout(5.0)
            yield engine.timeout(5.0)

        engine.process(proc())
        engine.run(until=6.0)
        assert engine.now == pytest.approx(6.0)
        engine.run(until=2.0)  # pending work: clamps backwards
        assert engine.now == pytest.approx(2.0)
        engine.run()
        assert engine.now == pytest.approx(10.0)
        engine.run(until=3.0)  # idle: now is left alone
        assert engine.now == pytest.approx(10.0)


@pytest.mark.skipif(
    os.environ.get("REPRO_SIM_FASTPATH", "").strip().lower()
    in ("0", "false", "off", "reference", "ref"),
    reason="environment pins the reference path (the CI reference leg)",
)
def test_default_path_is_fast():
    """The knob: fast by default, reference on demand."""
    assert fastpath_default() is True
    with forced_path(False):
        assert fastpath_default() is False
        assert Engine().fastpath is False
    assert Engine().fastpath is True
    assert Engine(fastpath=False).fastpath is False
