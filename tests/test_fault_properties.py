"""Hypothesis property tests for the fault-injection subsystem.

Two families:

- *schedule invariants*: whatever windows Hypothesis throws at it, a
  constructed :class:`FaultSchedule` is canonically sorted, per-(kind,
  device) non-overlapping, all factors >= 1, and seeded random schedules
  are reproducible;
- *simulation invariants*: on small seeded workloads with arbitrary stall
  windows, total bytes are conserved across retries and simulated event
  times never decrease.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.harness import SimJob
from repro.iosys.faults import (
    DEGRADE,
    KINDS,
    MDS_HICCUP,
    STALL,
    TAIL_BURST,
    FaultSchedule,
    FaultWindow,
)
from repro.iosys.machine import MachineConfig, MiB
from repro.iosys.posix import O_CREAT, O_RDWR

N_OSTS = 8


# -- strategies ----------------------------------------------------------------

@st.composite
def fault_windows(draw):
    kind = draw(st.sampled_from(KINDS))
    t0 = draw(st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False))
    span = draw(st.floats(0.01, 20.0, allow_nan=False, allow_infinity=False))
    device = (
        draw(st.integers(0, N_OSTS - 1)) if kind in (DEGRADE, STALL) else None
    )
    factor = draw(st.floats(1.0, 64.0, allow_nan=False, allow_infinity=False))
    return FaultWindow(kind, t0, t0 + span, device=device, factor=factor)


def _try_schedule(windows):
    """Build a schedule, or None when the draw violates the per-device
    non-overlap invariant (rejection is itself the behaviour under test)."""
    try:
        return FaultSchedule.of(*windows)
    except ValueError:
        return None


# -- schedule invariants -------------------------------------------------------

@given(st.lists(fault_windows(), max_size=8))
def test_schedule_is_sorted_and_non_overlapping(windows):
    sched = _try_schedule(windows)
    if sched is None:
        # the constructor must have rejected a genuine same-key overlap
        seen = {}
        overlap = False
        for w in sorted(windows, key=lambda w: w.t_start):
            key = (w.kind, w.device)
            if key in seen and w.t_start < seen[key]:
                overlap = True
            seen[key] = max(seen.get(key, 0.0), w.t_end)
        assert overlap
        return
    starts = [w.t_start for w in sched.windows]
    assert starts == sorted(starts)
    per_key = {}
    for w in sched.windows:
        for prev in per_key.get((w.kind, w.device), []):
            assert not w.overlaps(prev)
        per_key.setdefault((w.kind, w.device), []).append(w)
        assert w.factor >= 1.0


@given(st.lists(fault_windows(), max_size=8), st.floats(0.0, 80.0))
def test_queries_reflect_active_windows(windows, t):
    sched = _try_schedule(windows)
    if sched is None:
        return
    active = [w for w in sched.windows if w.active_at(t)]
    expect_degrade = max(
        (w.factor for w in active if w.kind == DEGRADE), default=1.0
    )
    assert sched.degrade_factor(t, range(N_OSTS)) == expect_degrade
    stalls = [w.t_end for w in active if w.kind == STALL]
    assert sched.stall_end(t, range(N_OSTS)) == (max(stalls) if stalls else None)
    expect_mds = max(
        (w.factor for w in active if w.kind == MDS_HICCUP), default=1.0
    )
    assert sched.mds_factor(t) == expect_mds
    expect_burst = max(
        (w.factor for w in active if w.kind == TAIL_BURST), default=1.0
    )
    assert sched.tail_boost(t) == expect_burst


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=25)
def test_random_schedules_reproducible(seed):
    kw = dict(n_osts=N_OSTS, duration=30.0, n_degrade=2, n_stall=2,
              n_mds=1, n_burst=1)
    a = FaultSchedule.random(seed, **kw)
    b = FaultSchedule.random(seed, **kw)
    assert a == b
    a.validate_devices(N_OSTS)
    for w in a.windows:
        assert 0.0 <= w.t_start < w.t_end <= 30.0


# -- simulation invariants -----------------------------------------------------

RECORD = 256 * 1024
NREC = 20
NTASKS = 4


def _writer(ctx, path):
    if ctx.rank == 0 and ctx.iosys.lookup(path) is None:
        ctx.iosys.set_stripe_count(path, ctx.machine.n_osts)
        fd = yield from ctx.io.open(path, O_CREAT | O_RDWR)
        yield from ctx.comm.barrier()
    else:
        yield from ctx.comm.barrier()
        fd = yield from ctx.io.open(path, O_CREAT | O_RDWR)
    base = ctx.rank * NREC * RECORD
    for j in range(NREC):
        yield from ctx.io.pwrite(fd, RECORD, base + j * RECORD)
    yield from ctx.io.close(fd)
    return None


def _simulate(stall_t0, stall_span, device, retry, seed):
    sched = FaultSchedule.of(
        FaultWindow(STALL, stall_t0, stall_t0 + stall_span, device=device)
    )
    machine = MachineConfig.testbox(
        n_osts=N_OSTS, fs_bw=1024 * MiB, discipline_weights={4: 1.0}
    ).with_overrides(
        faults=sched,
        client_retry=retry,
        # small timeouts keep the worst case fast under Hypothesis
        retry_base_timeout=0.05,
        retry_max_timeout=0.8,
        rpc_resend_interval=2.0,
    )
    job = SimJob(machine, NTASKS, seed=seed, placement="packed")
    return job.run(_writer, "/scratch/prop.dat")


@given(
    stall_t0=st.floats(0.0, 1.0, allow_nan=False),
    stall_span=st.floats(0.05, 1.5, allow_nan=False),
    device=st.integers(0, N_OSTS - 1),
    retry=st.booleans(),
    seed=st.integers(0, 1000),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_bytes_conserved_and_time_monotone(
    stall_t0, stall_span, device, retry, seed
):
    res = _simulate(stall_t0, stall_span, device, retry, seed)
    # every payload byte lands exactly once, however many resends happened
    assert res.total_bytes == NTASKS * NREC * RECORD
    assert res.iosys.total_bytes_written() == NTASKS * NREC * RECORD
    trace = res.trace
    assert (trace.durations >= 0).all()
    assert (trace.starts >= 0).all()
    assert float(trace.ends.max()) <= res.elapsed + 1e-9
    # per-rank event streams are recorded in non-decreasing start order
    for rank in range(NTASKS):
        sub = trace.filter(ranks=[rank])
        assert (np.diff(sub.starts) >= -1e-12).all()
    # retry meta-events appear iff resends were counted
    n_retry_events = len(trace.filter(ops=["retry"]))
    if res.meta["retries"] > 0:
        assert n_retry_events > 0
    else:
        assert n_retry_events == 0
