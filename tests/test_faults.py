"""Unit and integration tests for time-varying fault injection and the
client retry/recovery path (the tentpole acceptance criteria live here:
injected stall -> transient-fault finding naming the device and window,
and retry strictly beating the stock resend interval on the same seed).
"""

from __future__ import annotations

import pytest

from repro.apps.harness import SimJob
from repro.ensembles.diagnose import diagnose
from repro.ensembles.locate import find_transient_faults
from repro.iosys.faults import (
    DEGRADE,
    MDS_HICCUP,
    STALL,
    TAIL_BURST,
    FaultSchedule,
    FaultWindow,
)
from repro.iosys.machine import MachineConfig, MiB
from repro.iosys.posix import O_CREAT, O_RDWR

SICK = 5
NOSTS = 16
RECORD = 1 * MiB


# -- FaultWindow validation ----------------------------------------------------

def test_window_basics():
    w = FaultWindow(DEGRADE, 1.0, 3.0, device=2, factor=4.0)
    assert w.duration == 2.0
    assert w.active_at(1.0) and w.active_at(2.9)
    assert not w.active_at(3.0) and not w.active_at(0.5)
    assert w.overlaps(FaultWindow(STALL, 2.5, 4.0, device=2))
    assert not w.overlaps(FaultWindow(STALL, 3.0, 4.0, device=2))


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(kind="melt", t_start=0, t_end=1),
        dict(kind=DEGRADE, t_start=2.0, t_end=1.0, device=0),
        dict(kind=DEGRADE, t_start=-1.0, t_end=1.0, device=0),
        dict(kind=DEGRADE, t_start=0.0, t_end=1.0, device=0, factor=0.5),
        dict(kind=DEGRADE, t_start=0.0, t_end=1.0),  # device required
        dict(kind=STALL, t_start=0.0, t_end=1.0),
        dict(kind=MDS_HICCUP, t_start=0.0, t_end=1.0, device=3),  # forbidden
    ],
)
def test_window_rejects_bad_parameters(kwargs):
    with pytest.raises(ValueError):
        FaultWindow(**kwargs)


# -- FaultSchedule construction and queries ------------------------------------

def test_schedule_canonical_order_and_overlap_rejection():
    a = FaultWindow(DEGRADE, 5.0, 6.0, device=1, factor=2.0)
    b = FaultWindow(DEGRADE, 1.0, 2.0, device=1, factor=3.0)
    sched = FaultSchedule.of(a, b)
    assert sched.windows == (b, a)  # sorted by t_start
    with pytest.raises(ValueError):
        FaultSchedule.of(
            FaultWindow(DEGRADE, 0.0, 2.0, device=1),
            FaultWindow(DEGRADE, 1.0, 3.0, device=1),
        )
    # same times are fine on another device or another kind
    FaultSchedule.of(
        FaultWindow(DEGRADE, 0.0, 2.0, device=1),
        FaultWindow(DEGRADE, 1.0, 3.0, device=2),
        FaultWindow(STALL, 1.0, 3.0, device=1),
    )


def test_schedule_queries():
    sched = FaultSchedule.of(
        FaultWindow(DEGRADE, 1.0, 2.0, device=0, factor=3.0),
        FaultWindow(DEGRADE, 1.0, 4.0, device=1, factor=6.0),
        FaultWindow(STALL, 2.0, 5.0, device=2),
        FaultWindow(MDS_HICCUP, 0.0, 1.0, factor=8.0),
        FaultWindow(TAIL_BURST, 3.0, 4.0, factor=10.0),
    )
    assert len(sched) == 5 and not sched.is_empty
    # worst active degrade over the touched devices
    assert sched.degrade_factor(1.5, [0]) == 3.0
    assert sched.degrade_factor(1.5, [0, 1]) == 6.0
    assert sched.degrade_factor(2.5, [0]) == 1.0  # window over
    assert sched.degrade_factor(1.5, [3]) == 1.0
    assert sched.stall_end(3.0, [2]) == 5.0
    assert sched.stall_end(3.0, [0, 1]) is None
    assert sched.stall_end(5.0, [2]) is None  # half-open interval
    assert sched.mds_factor(0.5) == 8.0 and sched.mds_factor(1.5) == 1.0
    assert sched.tail_boost(3.5) == 10.0 and sched.tail_boost(2.0) == 1.0
    assert sched.span() == (0.0, 5.0)
    assert len(sched.for_device(1)) == 1
    sched.validate_devices(3)
    with pytest.raises(ValueError):
        sched.validate_devices(2)  # stall on device 2 out of range


def test_from_specs_round_trip_and_errors():
    sched = FaultSchedule.from_specs(
        ["degrade:5:10:60:6", "stall:3:10:25", "mds:0:5:8", "burst:30:60:16"]
    )
    kinds = [w.kind for w in sched.windows]
    assert sorted(kinds) == sorted([DEGRADE, STALL, MDS_HICCUP, TAIL_BURST])
    stall = next(w for w in sched.windows if w.kind == STALL)
    assert (stall.device, stall.t_start, stall.t_end) == (3, 10.0, 25.0)
    for bad in ["melt:1:2", "degrade:1:2", "stall:x:0:1", "degrade:0:5:1:6"]:
        with pytest.raises(ValueError):
            FaultSchedule.from_specs([bad])


def test_random_schedule_is_deterministic_and_valid():
    a = FaultSchedule.random(7, n_osts=8, duration=100.0, n_degrade=3,
                             n_stall=2, n_mds=1, n_burst=1)
    b = FaultSchedule.random(7, n_osts=8, duration=100.0, n_degrade=3,
                             n_stall=2, n_mds=1, n_burst=1)
    assert a == b
    c = FaultSchedule.random(8, n_osts=8, duration=100.0, n_degrade=3,
                             n_stall=2, n_mds=1, n_burst=1)
    assert a != c
    a.validate_devices(8)
    for w in a.windows:
        assert 0.0 <= w.t_start < w.t_end <= 100.0
        assert w.factor >= 1.0


# -- MachineConfig integration -------------------------------------------------

def test_machine_validates_schedule_and_retry_params():
    sched = FaultSchedule.of(FaultWindow(STALL, 0.0, 1.0, device=99))
    with pytest.raises(ValueError):
        MachineConfig.testbox().with_overrides(faults=sched)
    with pytest.raises(ValueError):
        MachineConfig.testbox().with_overrides(retry_backoff=0.5)


def test_retry_wait_backoff_progression():
    m = MachineConfig.testbox().with_overrides(client_retry=True)
    assert [m.retry_wait(i) for i in range(6)] == [1.0, 2.0, 4.0, 8.0, 16.0, 16.0]
    stock = MachineConfig.testbox()
    assert stock.retry_wait(0) == stock.rpc_resend_interval == 60.0
    assert stock.retry_wait(5) == 60.0


# -- end-to-end: shared-file record workload -----------------------------------

def _writer(ctx, nrec: int, path: str):
    if ctx.rank == 0 and ctx.iosys.lookup(path) is None:
        ctx.iosys.set_stripe_count(path, ctx.machine.n_osts)
        fd = yield from ctx.io.open(path, O_CREAT | O_RDWR)
        yield from ctx.comm.barrier()
    else:
        yield from ctx.comm.barrier()
        fd = yield from ctx.io.open(path, O_CREAT | O_RDWR)
    base = ctx.rank * nrec * RECORD
    for j in range(nrec):
        yield from ctx.io.pwrite(fd, RECORD, base + j * RECORD)
    yield from ctx.io.close(fd)
    return None


def _machine(**overrides):
    return MachineConfig.testbox(
        n_osts=NOSTS, fs_bw=2048 * MiB, discipline_weights={4: 1.0}
    ).with_overrides(**overrides)


def _run(machine, ntasks=16, nrec=150, seed=2, path="/scratch/t.dat"):
    job = SimJob(machine, ntasks, seed=seed, placement="packed")
    result = job.run(_writer, nrec, path)
    layout = job.iosys.lookup(path).layout
    return result, layout


STALL_SCHED = FaultSchedule.of(FaultWindow(STALL, 0.5, 1.2, device=SICK))


def test_stall_retry_recovers_and_is_localised():
    """The tentpole acceptance test: a scheduled transient OST stall is
    recovered by the analysis (device + window) and client retry strictly
    reduces the slowest-task completion vs the stock resend interval."""
    healthy, layout = _run(_machine())
    retried, _ = _run(_machine(faults=STALL_SCHED, client_retry=True))
    stalled, _ = _run(_machine(faults=STALL_SCHED, client_retry=False))

    # retries happened, were counted, and were traced as meta-events
    assert retried.meta["retries"] > 0
    assert len(retried.trace.filter(ops=["retry"])) > 0
    assert healthy.meta["retries"] == 0

    # bytes conserved across retries (each payload delivered exactly once)
    assert retried.total_bytes == healthy.total_bytes == stalled.total_bytes

    # backoff strictly beats the stock 60 s resend interval
    assert retried.elapsed < stalled.elapsed
    assert stalled.elapsed > 60.0  # stuck until the first stock resend

    # localisation: device and window recovered from the trace alone
    suspects = find_transient_faults(retried.trace, layout)
    assert [s.ost for s in suspects] == [SICK]
    top = suspects[0]
    assert top.t_start < 1.2 and top.t_end > 0.5
    assert top.n_retries > 0 and top.slowdown > 4.0

    findings = diagnose(retried.trace, nranks=16, layout=layout)
    fault = [f for f in findings if f.code == "transient-fault"]
    assert fault and fault[0].evidence["device"] == SICK
    assert fault[0].evidence["t_start"] < 1.2
    assert fault[0].evidence["t_end"] > 0.5

    # negative control: the healthy run raises no transient-fault finding
    clean = diagnose(healthy.trace, nranks=16, layout=layout)
    assert not [f for f in clean if f.code == "transient-fault"]


def test_stall_findings_survive_without_layout():
    retried, _ = _run(_machine(faults=STALL_SCHED, client_retry=True))
    findings = diagnose(retried.trace, nranks=16)  # no layout: window only
    fault = [f for f in findings if f.code == "transient-fault"]
    assert fault and fault[0].evidence["device"] == -1.0
    assert fault[0].evidence["t_start"] < 1.2
    assert fault[0].evidence["t_end"] > 0.5


def test_degrade_window_slows_only_inside_window():
    sched = FaultSchedule.of(
        FaultWindow(DEGRADE, 0.5, 1.2, device=SICK, factor=16.0)
    )
    degraded, layout = _run(_machine(faults=sched))
    healthy, _ = _run(_machine())
    # no stall: nothing to retry, but the run stretches
    assert degraded.meta["retries"] == 0
    assert degraded.elapsed > healthy.elapsed
    # and the localiser sees it as a transient window on the device
    suspects = find_transient_faults(degraded.trace, layout)
    assert suspects and suspects[0].ost == SICK


def test_mds_hiccup_slows_metadata_window():
    def _opener(ctx, n: int):
        for i in range(n):
            fd = yield from ctx.io.open(f"/scratch/m{ctx.rank}_{i}", O_CREAT | O_RDWR)
            yield from ctx.io.close(fd)
        return None

    def run_meta(machine):
        job = SimJob(machine, 4, seed=3)
        return job.run(_opener, 40)

    hiccup = FaultSchedule.of(FaultWindow(MDS_HICCUP, 0.0, 10.0, factor=12.0))
    slow = run_meta(_machine(faults=hiccup, mds_latency=1.0e-3))
    fast = run_meta(_machine(mds_latency=1.0e-3))
    assert slow.elapsed > 2.0 * fast.elapsed


def test_deterministic_given_schedule():
    a, _ = _run(_machine(faults=STALL_SCHED, client_retry=True))
    b, _ = _run(_machine(faults=STALL_SCHED, client_retry=True))
    assert a.elapsed == b.elapsed
    assert a.meta["retries"] == b.meta["retries"]
    assert (a.trace.starts == b.trace.starts).all()
    assert (a.trace.durations == b.trace.durations).all()
