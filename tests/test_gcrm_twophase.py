"""Tests for full two-phase collective buffering in the GCRM kernel."""

import numpy as np
import pytest

from repro.apps.gcrm import GcrmConfig, run_gcrm
from repro.iosys.machine import MachineConfig, MiB


def cfg(**over):
    params = dict(
        ntasks=64,
        io_tasks=8,
        cb_mode="twophase",
        stripe_count=4,
        machine=MachineConfig.testbox(tasks_per_node=4),
        meta_txn_cost=0.0,
        slabs_per_meta_txn=64,
    )
    params.update(over)
    return GcrmConfig(**params)


class TestTwoPhaseConfig:
    def test_requires_io_tasks(self):
        with pytest.raises(ValueError, match="io_tasks"):
            cfg(io_tasks=None)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="cb_mode"):
            cfg(cb_mode="threephase")

    def test_writer_count_is_full_width(self):
        c = cfg()
        assert c.writer_count == 64  # everyone runs
        assert cfg(cb_mode="stage2").writer_count == 8


class TestTwoPhaseBehaviour:
    def test_only_aggregators_write_data(self):
        res = run_gcrm(cfg())
        c = cfg()
        data = res.trace.writes().filter(min_size=c.record_bytes)
        writers = set(data.ranks.tolist())
        # aggregators are the first rank of each contiguous group of 8
        assert writers == {g * 8 for g in range(8)}

    def test_records_coalesce_into_group_runs(self):
        c = cfg()
        res = run_gcrm(c)
        data = res.trace.writes().filter(min_size=c.record_bytes)
        group = 64 // 8
        # every data write covers the whole group's slab run
        assert set(data.sizes.tolist()) == {c.record_bytes * group}
        # 21 records per logical task -> 21 coalesced writes per aggregator
        assert len(data) == 21 * 8

    def test_total_bytes_conserved(self):
        c = cfg()
        res = run_gcrm(c)
        data = res.trace.writes().filter(min_size=c.record_bytes)
        assert data.total_bytes == c.total_bytes

    def test_alignment_pads_group_runs(self):
        c = cfg(alignment=1 * MiB)
        res = run_gcrm(c)
        data = res.trace.writes().filter(min_size=c.record_bytes)
        assert np.all(data.offsets % MiB == 0)

    def test_all_ranks_synchronise(self):
        res = run_gcrm(cfg())
        assert res.ntasks == 64
        assert res.per_rank == [None] * 64

    def test_interconnect_shipping_costs_time(self):
        """Stage one is not free: a slower interconnect slows the run."""
        from repro.apps.harness import SimJob
        from repro.apps.gcrm import _gcrm_twophase_rank
        from repro.mpi.comm import Interconnect

        c = cfg()

        def run_with(bandwidth):
            job = SimJob(
                c.machine,
                c.writer_count,
                seed=0,
                interconnect=Interconnect(latency=1e-6, bandwidth=bandwidth),
            )
            return job.run(_gcrm_twophase_rank, c).elapsed

        fast = run_with(10e9)
        slow = run_with(50e6)
        assert slow > fast * 1.5
