"""Golden-trace regression harness.

Three small fixed-seed scenarios run end-to-end through the simulator and
tracer; the canonicalised event stream is hashed and compared against the
digests committed in ``tests/golden/*.json``.  Any change to simulator
timing, event ordering, RNG draws, or trace schema shows up as a digest
mismatch here *before* it silently shifts every figure.

Floats are canonicalised with ``float.hex`` (exact, locale-free), so the
digest is byte-stable across platforms that agree on IEEE-754 doubles.

If a change is *intended* to alter simulated behaviour, regenerate with::

    PYTHONPATH=src python tests/golden/regenerate.py

and commit the refreshed JSON together with the change that explains it.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.apps.harness import SimJob
from repro.apps.ior import IorConfig, run_ior
from repro.apps.madbench import MadbenchConfig, run_madbench
from repro.iosys.faults import STALL, FaultSchedule, FaultWindow
from repro.iosys.machine import MachineConfig, MiB
from repro.iosys.posix import O_CREAT, O_RDWR

GOLDEN_DIR = Path(__file__).parent / "golden"
FORMAT = 1


# -- canonicalisation ----------------------------------------------------------

def canonical_lines(trace) -> list:
    """One exact, order-preserving text line per event."""
    lines = []
    for rank, op, path, fd, offset, size, t0, dur, phase, deg in zip(
        trace.ranks, trace.ops, trace.paths, trace.fds, trace.offsets,
        trace.sizes, trace.starts, trace.durations, trace.phases,
        trace.degraded_flags,
    ):
        lines.append(
            f"{int(rank)}|{op}|{path}|{int(fd)}|{int(offset)}|{int(size)}|"
            f"{float(t0).hex()}|{float(dur).hex()}|{phase}|{int(deg)}"
        )
    return lines


def _hex_floats(obj):
    """Recursively replace floats with ``float.hex`` strings (exact,
    locale-free) so nested telemetry structures canonicalise like the
    event stream does."""
    if isinstance(obj, float):
        return obj.hex()
    if isinstance(obj, dict):
        return {k: _hex_floats(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_hex_floats(v) for v in obj]
    return obj


def telemetry_digest(timeline) -> str:
    """Canonical hash of a server-side telemetry export."""
    canon = json.dumps(_hex_floats(timeline.to_dict()), sort_keys=True)
    return hashlib.sha256(canon.encode()).hexdigest()


def digest(result) -> dict:
    lines = canonical_lines(result.trace)
    sha = hashlib.sha256("\n".join(lines).encode()).hexdigest()
    out = {
        "format": FORMAT,
        "n_events": len(lines),
        "total_bytes": int(result.total_bytes),
        "elapsed_hex": float(result.elapsed).hex(),
        "sha256": sha,
        # head/tail samples so a mismatch is debuggable from the diff alone
        "first_event": lines[0] if lines else "",
        "last_event": lines[-1] if lines else "",
    }
    if getattr(result, "telemetry", None) is not None:
        out["telemetry_sha256"] = telemetry_digest(result.telemetry)
    return out


# -- the three scenarios -------------------------------------------------------

def _scenario_ior_write():
    """IOR-style striped shared-file write, two repetitions."""
    machine = MachineConfig.testbox(n_osts=8)
    cfg = IorConfig(
        ntasks=8,
        block_size=4 * MiB,
        transfer_size=1 * MiB,
        repetitions=2,
        stripe_count=8,
        machine=machine,
        seed=11,
    )
    return run_ior(cfg)


def _scenario_madbench_read():
    """MADbench-style out-of-core matrix traffic, write then read back."""
    machine = MachineConfig.testbox(n_osts=8)
    cfg = MadbenchConfig(
        ntasks=4,
        n_matrices=3,
        matrix_bytes=2 * MiB - 51 * 1024,
        stripe_count=8,
        machine=machine,
        seed=12,
    )
    return run_madbench(cfg)


def _shared_writer(ctx, nrec, path):
    if ctx.rank == 0 and ctx.iosys.lookup(path) is None:
        ctx.iosys.set_stripe_count(path, ctx.machine.n_osts)
        fd = yield from ctx.io.open(path, O_CREAT | O_RDWR)
        yield from ctx.comm.barrier()
    else:
        yield from ctx.comm.barrier()
        fd = yield from ctx.io.open(path, O_CREAT | O_RDWR)
    base = ctx.rank * nrec * MiB
    for j in range(nrec):
        yield from ctx.io.pwrite(fd, MiB, base + j * MiB)
    yield from ctx.io.close(fd)
    return None


def _stall_machine(**extra):
    return MachineConfig.testbox(
        n_osts=16,
        fs_bw=2048 * MiB,
        discipline_weights={4: 1.0},
        ost_slowdown={3: 4.0},
    ).with_overrides(
        faults=FaultSchedule.of(FaultWindow(STALL, 0.3, 0.9, device=5)),
        client_retry=True,
        **extra,
    )


def _scenario_slow_ost_stall():
    """Shared-file records against a statically slow OST plus a scheduled
    transient stall, with the client retry/backoff path enabled -- locks
    the fault-injection and recovery subsystem into the golden digest."""
    job = SimJob(_stall_machine(), 8, seed=13, placement="packed")
    return job.run(_shared_writer, 60, "/scratch/golden.dat")


def _scenario_telemetry_stall():
    """The identical slow-OST-plus-stall workload with server-side
    telemetry recording -- locks the per-device counter export into a
    golden digest, and (because telemetry is pure observation) its event
    stream must stay byte-identical to ``slow_ost_stall``'s, which
    ``test_telemetry_is_pure_observation`` pins."""
    job = SimJob(
        _stall_machine(telemetry=True), 8, seed=13, placement="packed"
    )
    return job.run(_shared_writer, 60, "/scratch/golden.dat")


def _scenario_telemetry_healthy():
    """The same recorded workload with no slow device and no fault: the
    negative control pinning down that a healthy pool's telemetry shows
    no retries, no degraded traffic, and an empty truth set."""
    machine = MachineConfig.testbox(
        n_osts=16,
        fs_bw=2048 * MiB,
        discipline_weights={4: 1.0},
    ).with_overrides(client_retry=True, telemetry=True)
    job = SimJob(machine, 8, seed=13, placement="packed")
    return job.run(_shared_writer, 60, "/scratch/golden.dat")


def _scenario_replica_failover():
    """File-per-task records on 2-way mirrored stripes with a mid-run
    OST stall: writes skip the stalled copy (marking it stale) and reads
    steer to the surviving replica -- locks the replication subsystem's
    placement, detection timeouts, and failover meta-events into the
    golden digest."""
    machine = MachineConfig.testbox(
        n_osts=8,
        fs_bw=1024 * MiB,
        fs_read_bw=1024 * MiB,
        default_stripe_count=4,
        discipline_weights={2: 1.0},
    ).with_overrides(
        faults=FaultSchedule.of(FaultWindow(STALL, 0.10, 0.60, device=2)),
        client_retry=True,
        retry_base_timeout=0.05,
        retry_max_timeout=0.8,
        replica_count=2,
        failover_probe_interval=0.5,
    )

    def worker(ctx, nrec, base):
        path = f"{base}.{ctx.rank:04d}"
        ctx.iosys.set_stripe_count(path, 4)
        fd = yield from ctx.io.open(path, O_CREAT | O_RDWR)
        ctx.io.region("write")
        for j in range(nrec):
            yield from ctx.io.pwrite(fd, MiB, j * MiB)
        yield from ctx.comm.barrier()
        ctx.io.region("read")
        for j in range(nrec):
            yield from ctx.io.pread(fd, MiB, j * MiB)
        yield from ctx.io.close(fd)
        return None

    job = SimJob(machine, 4, seed=17, placement="packed")
    return job.run(worker, 12, "/scratch/mirror.dat")


def _ec_machine(faults):
    return MachineConfig.testbox(
        n_osts=8,
        fs_bw=1024 * MiB,
        fs_read_bw=1024 * MiB,
        default_stripe_count=4,
        discipline_weights={2: 1.0},
    ).with_overrides(
        faults=faults,
        client_retry=True,
        retry_base_timeout=0.05,
        retry_max_timeout=0.8,
        ec_k=4,
        ec_m=1,
        failover_probe_interval=0.5,
    )


def _ec_worker(ctx, nrec, base):
    # group-aligned 4 MiB records keep the parity bill at exactly
    # (k+m)/k; the 1 MiB read-back sub-records each touch a single
    # data device, so degraded-read events attribute unambiguously
    path = f"{base}.{ctx.rank:04d}"
    ctx.iosys.set_stripe_count(path, 4)
    fd = yield from ctx.io.open(path, O_CREAT | O_RDWR)
    ctx.io.region("write")
    for j in range(nrec):
        yield from ctx.io.pwrite(fd, 4 * MiB, j * 4 * MiB)
    yield from ctx.comm.barrier()
    ctx.io.region("read")
    for j in range(nrec * 4):
        yield from ctx.io.pread(fd, MiB, j * MiB)
    yield from ctx.io.close(fd)
    return None


def _scenario_ec_degraded_read():
    """File-per-task records on 4+1 erasure-coded stripes with a mid-run
    OST stall: reads of extents on the lost device fan out to the k
    survivors and decode server-side -- locks the erasure subsystem's
    rotated parity placement, parity write amplification, detection
    timeouts, and degraded-read meta-events into the golden digest."""
    machine = _ec_machine(
        FaultSchedule.of(FaultWindow(STALL, 0.10, 0.60, device=2))
    )
    job = SimJob(machine, 4, seed=17, placement="packed")
    return job.run(_ec_worker, 3, "/scratch/ecgold.dat")


def _scenario_ec_healthy():
    """The identical coded workload with no fault injected: the negative
    control pinning down that a healthy code costs only its parity bytes
    -- zero reconstructions, zero degraded-read events."""
    machine = _ec_machine(None)
    job = SimJob(machine, 4, seed=17, placement="packed")
    return job.run(_ec_worker, 3, "/scratch/ecgold.dat")


def _scenario_interference_mds_storm():
    """Two-tenant facility: a checkpoint-writing victim with a 16-task
    metadata storm arriving mid-run -- locks the multi-tenant scheduler's
    admission order, cross-file arbitration, and the per-tenant telemetry
    export (tenant counters, MDS attribution, job-residency ledger) into
    the golden digest."""
    from repro.iosys.scheduler import Facility, TenantJob

    machine = MachineConfig.shared_testbox()
    return Facility(
        machine,
        [
            TenantJob("victim", "checkpoint", 4, params={"nfiles": 24}),
            TenantJob("storm", "mds-storm", 16, arrival=0.3,
                      params={"nfiles": 6}),
        ],
        seed=11,
    ).run()


def _scenario_interference_healthy():
    """The same victim next to a near-idle co-tenant: the negative
    control pinning down that a quiet neighbour leaves the victim's
    stream unstormed and the per-tenant ledger nearly empty."""
    from repro.iosys.scheduler import Facility, TenantJob

    machine = MachineConfig.shared_testbox()
    return Facility(
        machine,
        [
            TenantJob("victim", "checkpoint", 4, params={"nfiles": 24}),
            TenantJob("bystander", "idle", 2, arrival=0.1),
        ],
        seed=11,
    ).run()


SCENARIOS = {
    "ior_write": _scenario_ior_write,
    "madbench_read": _scenario_madbench_read,
    "slow_ost_stall": _scenario_slow_ost_stall,
    "replica_failover": _scenario_replica_failover,
    "ec_degraded_read": _scenario_ec_degraded_read,
    "ec_healthy": _scenario_ec_healthy,
    "telemetry_stall": _scenario_telemetry_stall,
    "telemetry_healthy": _scenario_telemetry_healthy,
    "interference_mds_storm": _scenario_interference_mds_storm,
    "interference_healthy": _scenario_interference_healthy,
}


def regenerate() -> dict:
    """Recompute and write every golden file; returns the digests."""
    GOLDEN_DIR.mkdir(exist_ok=True)
    out = {}
    for name, fn in SCENARIOS.items():
        d = digest(fn())
        (GOLDEN_DIR / f"{name}.json").write_text(
            json.dumps(d, indent=2, sort_keys=True) + "\n"
        )
        out[name] = d
    return out


# -- the regression tests ------------------------------------------------------

@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_trace_matches_golden(name):
    golden_path = GOLDEN_DIR / f"{name}.json"
    assert golden_path.exists(), (
        f"missing golden file {golden_path}; run "
        f"PYTHONPATH=src python tests/golden/regenerate.py and commit it"
    )
    golden = json.loads(golden_path.read_text())
    got = digest(SCENARIOS[name]())
    assert got == golden, (
        f"{name}: simulated behaviour changed.  If intended, regenerate "
        f"the goldens and commit them with the change."
    )


def test_ec_scenarios_bracket_the_fault():
    """The degraded scenario must actually reconstruct and the healthy
    control must not -- guards against both goldens drifting into
    digests of the wrong behaviour."""
    degraded = SCENARIOS["ec_degraded_read"]()
    healthy = SCENARIOS["ec_healthy"]()
    assert degraded.meta["reconstructions"] > 0
    assert len(degraded.trace.filter(ops=["degraded-read"])) > 0
    assert healthy.meta["reconstructions"] == 0
    assert len(healthy.trace.filter(ops=["degraded-read"])) == 0


def test_telemetry_is_pure_observation():
    """Recording server-side telemetry must not perturb the simulation:
    the recorded run's event stream is byte-identical to the same
    scenario with telemetry off."""
    base = digest(SCENARIOS["slow_ost_stall"]())
    tel = digest(SCENARIOS["telemetry_stall"]())
    for key in ("sha256", "n_events", "total_bytes", "elapsed_hex"):
        assert tel[key] == base[key], key


def test_telemetry_scenarios_bracket_the_fault():
    """The recorded stall scenario must show the injected truth on the
    right device and the healthy control must show none -- guards
    against both telemetry goldens drifting into digests of the wrong
    counters."""
    stall = SCENARIOS["telemetry_stall"]()
    tl = stall.telemetry
    assert tl is not None
    totals = tl.device_totals()
    assert totals["retries"][5] > 0
    assert totals["retries"].sum() == totals["retries"][5]
    assert tl.faulted_devices(0.0, tl.span) == (5,)
    assert tl.slow_devices() == (3,)

    healthy = SCENARIOS["telemetry_healthy"]()
    htl = healthy.telemetry
    assert htl is not None
    assert htl.is_healthy
    htot = htl.device_totals()
    for field in ("retries", "degraded_bytes", "recon_bytes",
                  "stale_bytes", "parity_bytes"):
        assert htot[field].sum() == 0, field
    assert htot["bytes_in"].sum() > 0


def test_healing_preserves_healthy_golden():
    """Running the self-healing control plane on a healthy pool must
    not perturb the simulation: with no faults the monitor observes but
    never acts, so the heal-on run is byte-identical to the committed
    ``telemetry_healthy`` golden (pinning the escape hatch: heal-on is
    free until something is actually sick)."""
    machine = MachineConfig.testbox(
        n_osts=16,
        fs_bw=2048 * MiB,
        discipline_weights={4: 1.0},
    ).with_overrides(client_retry=True, telemetry=True)
    job = SimJob(machine, 8, seed=13, placement="packed", heal=True)
    got = digest(job.run(_shared_writer, 60, "/scratch/golden.dat"))
    golden = json.loads(
        (GOLDEN_DIR / "telemetry_healthy.json").read_text()
    )
    for key in ("sha256", "n_events", "total_bytes", "elapsed_hex",
                "telemetry_sha256"):
        assert got[key] == golden[key], key
    assert job.iosys.healing_actions() == ()


def test_back_to_back_runs_are_byte_identical():
    """Two fresh runs of the same scenario in one process must produce
    byte-identical canonical streams (no hidden global state)."""
    name = "slow_ost_stall"
    a = digest(SCENARIOS[name]())
    b = digest(SCENARIOS[name]())
    assert a == b
