"""Unit tests for the HDF5/H5Part middleware."""

import pytest

from repro.apps.h5part import H5PartFile
from repro.apps.harness import SimJob
from repro.apps.hdf5 import H5File, align_up
from repro.iosys.machine import MachineConfig, MiB

KiB = 1024


def job(ntasks=4, **kw):
    return SimJob(MachineConfig.testbox(), ntasks, **kw)


class TestAlignUp:
    def test_rounds_up(self):
        assert align_up(1, MiB) == MiB
        assert align_up(MiB, MiB) == MiB
        assert align_up(MiB + 1, MiB) == 2 * MiB

    def test_none_is_identity(self):
        assert align_up(12345, None) == 12345
        assert align_up(12345, 0) == 12345
        assert align_up(12345, 1) == 12345


class TestH5File:
    def run_with_file(self, ntasks=4, records=2, **open_kw):
        j = job(ntasks)

        def fn(ctx):
            h5 = yield from H5File.create(ctx, "/d.h5", **open_kw)
            ds = yield from h5.create_dataset(
                "v", int(1.6 * MiB), records_per_rank=records
            )
            for rec in range(records):
                yield from h5.write_record(ds, rec)
            yield from h5.finish_step(ds)
            yield from h5.close()
            return ds

        results = j.run(fn).per_rank
        return j, results[0]

    def test_unaligned_slabs_pack_tightly(self):
        j, ds = self.run_with_file()
        assert ds.slab_stride == ds.slab_bytes
        # neighbouring ranks' records abut
        assert ds.slab_offset(1, 0) - ds.slab_offset(0, 0) == ds.slab_bytes

    def test_alignment_pads_slabs(self):
        j, ds = self.run_with_file(alignment=1 * MiB)
        assert ds.slab_stride == 2 * MiB  # 1.6 MB padded up
        assert ds.slab_offset(0, 0) % MiB == 0
        assert ds.slab_offset(3, 1) % MiB == 0

    def test_record_interleaving_matches_h5part(self):
        _j, ds = self.run_with_file(ntasks=4, records=3)
        # record-major: all ranks' record 0, then record 1 ...
        assert ds.slab_offset(0, 1) == ds.offset + 4 * ds.slab_stride

    def test_all_slabs_written(self):
        j, ds = self.run_with_file(ntasks=4, records=2)
        data = j.collector.trace.writes().filter(min_size=MiB)
        assert len(data) == 8
        offsets = sorted(data.offsets.tolist())
        assert len(set(offsets)) == 8  # no overlap

    def test_metadata_serial_on_rank0(self):
        j, _ds = self.run_with_file()
        tiny = j.collector.trace.data_ops().filter(max_size=4 * KiB)
        assert len(tiny) > 0
        assert set(tiny.ranks.tolist()) == {0}

    def test_metadata_aggregation_defers_to_close(self):
        j = job(4)

        def fn(ctx):
            h5 = yield from H5File.create(
                ctx, "/d.h5", metadata_aggregation=True, meta_txn_cost=0.05
            )
            ds = yield from h5.create_dataset("v", MiB)
            yield from h5.write_record(ds, 0)
            yield from h5.finish_step(ds)
            mid_tiny = len(
                ctx.collector.trace.data_ops().filter(max_size=4 * KiB)
            )
            yield from h5.close()
            return mid_tiny

        mid_counts = j.run(fn).per_rank
        # before close: only the superblock write, no per-txn small I/O
        assert all(c <= 1 for c in mid_counts)
        # at close, pending metadata went out as >= 1 larger write
        final = j.collector.trace.writes().filter(min_size=4 * KiB)
        assert len(final) >= 1

    def test_meta_txn_counter(self):
        j, _ = self.run_with_file()
        reg = j.iosys.__dict__["_h5_registry"]["/d.h5"]
        assert reg["meta_txns"] >= H5File.META_TXN_PER_CREATE + 1

    def test_dataset_reuse_does_not_move_cursor(self):
        j = job(2)

        def fn(ctx):
            h5 = yield from H5File.create(ctx, "/d.h5")
            a = yield from h5.create_dataset("v", MiB)
            b = yield from h5.create_dataset("v", MiB)
            return (a.offset, b.offset)

        results = j.run(fn).per_rank
        assert all(a == b for a, b in results)

    def test_datasets_do_not_overlap(self):
        j = job(2)

        def fn(ctx):
            h5 = yield from H5File.create(ctx, "/d.h5")
            a = yield from h5.create_dataset("a", MiB, records_per_rank=2)
            b = yield from h5.create_dataset("b", MiB)
            return (a, b)

        a, b = j.run(fn).per_rank[0]
        a_end = a.offset + a.slab_stride * a.nranks * a.records_per_rank
        assert b.offset >= a_end


class TestH5Part:
    def test_step_and_field_workflow(self):
        j = job(4)

        def fn(ctx):
            f = yield from H5PartFile.open(ctx, "/p.h5", stripe_count=4)
            yield from f.set_step(0)
            r0 = yield from f.write_field("x", MiB)
            r1 = yield from f.write_field("y", MiB, records_per_rank=3)
            yield from f.close()
            return (len(r0), len(r1))

        assert j.run(fn).per_rank == [(1, 3)] * 4
        data = j.collector.trace.writes().filter(min_size=MiB)
        assert len(data) == 4 * (1 + 3)

    def test_write_field_requires_step(self):
        j = job(2)

        def fn(ctx):
            f = yield from H5PartFile.open(ctx, "/p.h5")
            with pytest.raises(RuntimeError, match="set_step"):
                yield from f.write_field("x", MiB)
            yield from ctx.comm.barrier()
            return True

        assert all(j.run(fn).per_rank)

    def test_fields_in_different_steps_are_distinct_datasets(self):
        j = job(2)

        def fn(ctx):
            f = yield from H5PartFile.open(ctx, "/p.h5")
            yield from f.set_step(0)
            yield from f.write_field("x", MiB)
            yield from f.set_step(1)
            yield from f.write_field("x", MiB)
            yield from f.close()
            return None

        j.run(fn)
        reg = j.iosys.__dict__["_h5_registry"]["/p.h5"]
        assert set(reg["datasets"]) == {"step0/x", "step1/x"}
