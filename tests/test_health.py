"""Self-healing control plane: detector, quarantine lifecycle,
backpressure, and the healing oracle.

Four families:

- *detector units*: the failure detector needs retry evidence (latency
  alone never quarantines -- that is what keeps no-fault runs
  byte-identical), flap damping blocks immediate re-quarantine, and
  placement steers new extents off quarantined devices;
- *backpressure units*: saturation latches on queue depth, exits on the
  hysteresis threshold, and throttles only the dominant tenant (never
  the solo tenant 0);
- *lifecycle + oracle*: an injected stall produces the full
  quarantine -> rebuild -> readmit arc, every action graded CONFIRMED,
  and fabricated actions on innocent devices come back CONTRADICTED;
- *fault-schedule edge cases* (window at t=0, back-to-back windows,
  window outliving the run) plus a Hypothesis property: client retries
  + quarantine/drain/rebuild never lose or duplicate payload bytes.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.harness import SimJob
from repro.ensembles.oracle import (
    CONFIRMED,
    CONTRADICTED,
    verify_healing,
)
from repro.iosys.faults import STALL, FaultSchedule, FaultWindow
from repro.iosys.health import (
    QUARANTINE,
    READMIT,
    REBUILD,
    SHED,
    HealAction,
    HealthMonitor,
)
from repro.iosys.machine import MachineConfig, MiB
from repro.iosys.posix import O_CREAT, O_RDWR, O_SYNC, IoSystem
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams

N_OSTS = 8
RECORD = 256 * 1024
NREC = 20
NTASKS = 4


def _monitor(**overrides) -> HealthMonitor:
    """A live monitor wired to a real (idle) substrate."""
    machine = MachineConfig.testbox(n_osts=N_OSTS).with_overrides(
        telemetry=True, heal=True, **overrides
    )
    iosys = IoSystem(Engine(), machine, ntasks=4, rng=RngStreams(0))
    assert iosys.health is not None
    return iosys.health


# -- detector units ------------------------------------------------------------

def test_latency_alone_never_quarantines():
    h = _monitor()
    for _ in range(50):
        h.observe_op((0,), 10.0)  # grossly slow, but zero retries
        h.observe_op((1,), 0.001)
    assert h.quarantined_devices() == ()


def test_retry_evidence_quarantines():
    h = _monitor()
    h.on_retries((0,), 3)
    assert h.is_quarantined(0)
    kinds = [a.kind for a in h.actions()]
    assert kinds[0] == QUARANTINE
    assert h.counters()["heal_quarantines"] == 1


def test_flap_damping_blocks_requarantine():
    h = _monitor(heal_flap_damping=5.0)
    h._last_readmit[0] = h.engine.now  # just readmitted
    h.on_retries((0,), 3)
    assert not h.is_quarantined(0)  # damped
    h.on_retries((1,), 3)
    assert h.is_quarantined(1)  # other devices unaffected


def test_score_combines_retries_and_latency():
    h = _monitor(heal_score_threshold=100.0)  # observe without acting
    h.on_retries((0,), 2)
    base = h.score(0)
    assert base >= 2.0
    for _ in range(10):
        h.observe_op((0,), 1.0)
        h.observe_op((1,), 0.001)
    assert h.score(0) > base  # relative latency adds to the score
    assert h.score(1) == 0.0


def test_placement_steers_off_quarantined_devices():
    h = _monitor()
    assert h.placement_start(2, 4, N_OSTS) == 2  # identity when healthy
    h.on_retries((3,), 5)
    assert h.is_quarantined(3)
    start = h.placement_start(2, 4, N_OSTS)
    footprint = {(start + i) % N_OSTS for i in range(4)}
    assert 3 not in footprint
    # a footprint that cannot avoid the quarantine falls back unchanged
    assert h.placement_start(0, N_OSTS, N_OSTS) == 0


# -- backpressure units --------------------------------------------------------

def test_saturation_latches_and_exits_with_hysteresis():
    h = _monitor(heal_backpressure_depth=4, heal_backpressure_exit=0.5)
    for _ in range(4):
        h.on_op_begin((0,), 1)
    assert h.saturated
    assert h.counters()["heal_sheds"] == 1
    h.on_op_end((0,), 1)
    assert h.saturated  # 3 inflight: still above the exit threshold
    h.on_op_end((0,), 1)
    h.on_op_end((0,), 1)
    assert not h.saturated  # 1 inflight: below exit * depth = 2
    sheds = [a for a in h.actions() if a.kind == SHED]
    assert len(sheds) == 1
    assert sheds[0].t_end is not None
    assert sheds[0].info["peak_depth"] == 4.0


def test_throttle_targets_only_the_dominant_tenant():
    h = _monitor(heal_backpressure_depth=4)
    for _ in range(3):
        h.on_op_begin((0,), 2)  # tenant 2 dominates the RPC rate
    h.on_op_begin((0,), 1)
    assert h.saturated
    assert h.throttle_delay(0) == 0.0  # solo runs are never throttled
    assert h.throttle_delay(1) == 0.0  # minority tenant rides free
    assert h.throttle_delay(2) == h.config.heal_throttle_delay
    assert h.counters()["heal_throttled_ops"] == 1


def test_no_throttle_when_not_saturated():
    h = _monitor(heal_backpressure_depth=1000)
    for _ in range(5):
        h.on_op_begin((0,), 2)
    assert not h.saturated
    assert h.throttle_delay(2) == 0.0


# -- lifecycle + oracle --------------------------------------------------------

def _writer(ctx, path):
    # O_SYNC: every record goes to the OSTs synchronously, so the tiny
    # workload actually feels the stall (buffered writes would be
    # absorbed by the client cache and flushed after the windows close)
    flags = O_CREAT | O_RDWR | O_SYNC
    if ctx.rank == 0 and ctx.iosys.lookup(path) is None:
        ctx.iosys.set_stripe_count(path, ctx.machine.n_osts)
        fd = yield from ctx.io.open(path, flags)
        yield from ctx.comm.barrier()
    else:
        yield from ctx.comm.barrier()
        fd = yield from ctx.io.open(path, flags)
    base = ctx.rank * NREC * RECORD
    for j in range(NREC):
        yield from ctx.io.pwrite(fd, RECORD, base + j * RECORD)
    yield from ctx.io.close(fd)
    return None


def _heal_run(windows, heal=True, **overrides):
    # 128 MiB/s stretches the 20 MiB workload to ~0.16 s of simulated
    # time so the sub-second fault windows below land inside the run
    machine = MachineConfig.testbox(
        n_osts=N_OSTS, fs_bw=128 * MiB, discipline_weights={4: 1.0}
    ).with_overrides(
        faults=FaultSchedule.of(*windows) if windows else None,
        client_retry=True,
        retry_base_timeout=0.05,
        retry_max_timeout=0.8,
        rpc_resend_interval=2.0,
        replica_count=2,
        client_failover=True,
        telemetry=True,
        **overrides,
    )
    job = SimJob(machine, NTASKS, seed=7, placement="packed", heal=heal)
    return job.run(_writer, "/scratch/heal.dat")


def test_quarantine_lifecycle_under_stall():
    res = _heal_run([FaultWindow(STALL, 0.02, 0.12, device=2)])
    assert res.total_bytes == NTASKS * NREC * RECORD
    actions = res.iosys.healing_actions()
    by_kind = {}
    for a in actions:
        by_kind.setdefault(a.kind, []).append(a)
    assert len(by_kind.get(QUARANTINE, [])) == 1
    assert len(by_kind.get(READMIT, [])) == 1
    q, r = by_kind[QUARANTINE][0], by_kind[READMIT][0]
    assert q.device == 2 and r.device == 2
    assert r.t_start >= 0.12  # readmitted only after the window closed
    assert q.t_end == r.t_start  # readmit closes the quarantine
    rebuilds = by_kind.get(REBUILD, [])
    assert rebuilds and rebuilds[0].info["bytes"] > 0
    assert res.meta["heal_rebuild_bytes"] == sum(
        a.info["bytes"] for a in rebuilds
    )
    report = verify_healing(actions, res.telemetry)
    assert report.all_confirmed
    assert report.n_contradicted == 0


def test_oracle_contradicts_fabricated_actions():
    res = _heal_run([FaultWindow(STALL, 0.02, 0.12, device=2)])
    tl = res.telemetry
    fake = [
        # quarantining an innocent device: no fault ever touched OST 5
        HealAction(QUARANTINE, 5, 0.04, 0.1, info={"score": 9.9}),
        # readmitting the sick device mid-window: it is still down
        HealAction(READMIT, 2, 0.05, 0.05),
        # shedding when nothing was saturated and no fault was near
        HealAction(SHED, None, tl.span - 1e-3, tl.span,
                   info={"depth": 1.0, "threshold": 1e9,
                         "peak_depth": 1.0}),
    ]
    report = verify_healing(fake, tl, slack=0.0)
    assert all(v.verdict == CONTRADICTED for v in report.verdicts)


def test_oracle_confirms_real_actions_only():
    res = _heal_run([FaultWindow(STALL, 0.02, 0.12, device=2)])
    real = verify_healing(res.iosys.healing_actions(), res.telemetry)
    assert real.n_confirmed == len(real.verdicts) > 0
    assert all(v.verdict == CONFIRMED for v in real.verdicts)


# -- fault-schedule edge cases (heal on) ---------------------------------------

def test_window_at_t_zero():
    res = _heal_run([FaultWindow(STALL, 0.0, 0.05, device=1)])
    assert res.total_bytes == NTASKS * NREC * RECORD
    report = verify_healing(res.iosys.healing_actions(), res.telemetry)
    assert report.n_contradicted == 0


def test_back_to_back_windows_on_one_device():
    # a short dwell ends inside the first window: the probe must see
    # the second window and keep the device out until both have passed
    res = _heal_run(
        [
            FaultWindow(STALL, 0.02, 0.06, device=2),
            FaultWindow(STALL, 0.06, 0.12, device=2),
        ],
        heal_quarantine_hold=0.01,
    )
    assert res.total_bytes == NTASKS * NREC * RECORD
    actions = res.iosys.healing_actions()
    readmits = [a for a in actions if a.kind == READMIT]
    assert readmits
    for a in readmits:
        assert a.t_start >= 0.12
    report = verify_healing(actions, res.telemetry)
    assert report.n_contradicted == 0


def test_window_outliving_the_run():
    res = _heal_run(
        [FaultWindow(STALL, 0.02, 1000.0, device=2)]
    )
    # the mirrored copies carry the job home long before the window ends
    assert res.total_bytes == NTASKS * NREC * RECORD
    assert res.elapsed < 100.0
    actions = res.iosys.healing_actions()
    assert any(a.kind == QUARANTINE and a.device == 2 for a in actions)
    report = verify_healing(actions, res.telemetry)
    assert report.n_contradicted == 0


# -- conservation under drain/rebuild (Hypothesis) -----------------------------

@given(
    stall_t0=st.floats(0.0, 0.25, allow_nan=False),
    stall_span=st.floats(0.02, 0.5, allow_nan=False),
    device=st.integers(0, N_OSTS - 1),
    seed=st.integers(0, 1000),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_healing_conserves_bytes(stall_t0, stall_span, device, seed):
    """Client retries + quarantine/drain/rebuild never lose or
    duplicate payload bytes, whatever stall Hypothesis throws at it."""
    machine = MachineConfig.testbox(
        n_osts=N_OSTS, fs_bw=128 * MiB, discipline_weights={4: 1.0}
    ).with_overrides(
        faults=FaultSchedule.of(
            FaultWindow(STALL, stall_t0, stall_t0 + stall_span,
                        device=device)
        ),
        client_retry=True,
        retry_base_timeout=0.05,
        retry_max_timeout=0.8,
        rpc_resend_interval=2.0,
        replica_count=2,
        client_failover=True,
        telemetry=True,
    )
    job = SimJob(machine, NTASKS, seed=seed, placement="packed", heal=True)
    res = job.run(_writer, "/scratch/conserve.dat")
    expected = NTASKS * NREC * RECORD
    # payload conservation: the application's bytes land exactly once
    assert res.total_bytes == expected
    # physical writes: between one copy (mirror drained/skipped) and two
    # copies of every byte -- never more, however the drain interleaved
    physical = res.iosys.total_bytes_written()
    assert expected <= physical <= 2 * expected
    report = verify_healing(res.iosys.healing_actions(), res.telemetry)
    assert report.n_contradicted == 0


def test_heal_on_equals_heal_off_without_faults():
    on = _heal_run(None, heal=True)
    off = _heal_run(None, heal=False)
    assert on.elapsed == off.elapsed
    assert on.total_bytes == off.total_bytes
    assert on.iosys.healing_actions() == ()
