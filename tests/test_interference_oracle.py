"""Differential tests for cross-tenant interference attribution.

A checkpoint-writing victim shares the facility with different
co-tenants; :func:`find_interference` must accuse the tenant actually
responsible for the victim's slow intervals, and the server-side ledger
oracle must CONFIRM the true attribution while CONTRADICTING the same
finding re-pointed at an innocent bystander (dominance check) or at a
tenant that never ran (residency check).  A healthy co-tenant run is the
negative control: any finding there is a false accusation.  The
scenarios mirror ``fig_interference`` and the interference golden
traces, so the runs are already pinned byte-for-byte elsewhere.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.ensembles.diagnose import Finding, find_interference
from repro.ensembles.oracle import (
    CONFIRMED,
    CONTRADICTED,
    UNVERIFIED,
    verify_interference,
)
from repro.iosys.machine import MachineConfig
from repro.iosys.scheduler import Facility, TenantJob

_VICTIM = TenantJob("victim", "checkpoint", 4, params={"nfiles": 36})
_STORM = TenantJob("storm", "mds-storm", 16, arrival=0.3,
                   params={"nfiles": 6})
_HOG = TenantJob("hog", "bandwidth-hog", 8, arrival=0.3,
                 params={"nrec": 4, "rec_mib": 2.0})
_IDLE = TenantJob("bystander", "idle", 2, arrival=0.1)


def _run(co_jobs):
    machine = MachineConfig.shared_testbox()
    return Facility(machine, [_VICTIM] + list(co_jobs), seed=11).run()


@pytest.fixture(scope="module")
def storm_run():
    """Victim + 16-task metadata storm arriving mid-run + idle bystander."""
    return _run([_STORM, _IDLE])


@pytest.fixture(scope="module")
def hog_run():
    """Victim + 8-task full-stripe bandwidth hog + idle bystander."""
    return _run([_HOG, _IDLE])


@pytest.fixture(scope="module")
def healthy_run():
    """Victim + idle bystander only: the negative control."""
    return _run([_IDLE])


def _victim_findings(res):
    vic = res.job("victim")
    return find_interference(vic.trace, res.telemetry, vic.tenant)


# -- metadata-storm attribution -------------------------------------------------

class TestMdsStorm:
    def test_storm_accused_and_confirmed(self, storm_run):
        findings = _victim_findings(storm_run)
        assert findings, "victim next to an MDS storm should show a finding"
        want = float(storm_run.job("storm").tenant)
        assert all(f.evidence["aggressor"] == want for f in findings)
        assert any(f.evidence["mds"] == 1.0 for f in findings)
        report = verify_interference(findings, storm_run.telemetry)
        assert report.all_confirmed, report.format()

    def test_confirmed_detail_cites_ledger(self, storm_run):
        report = verify_interference(
            _victim_findings(storm_run), storm_run.telemetry
        )
        v = next(v for v in report.verdicts if v.verdict == CONFIRMED)
        assert "ledger agrees" in v.detail
        assert "storm" in v.detail

    def test_bystander_repoint_contradicted(self, storm_run):
        f0 = _victim_findings(storm_run)[0]
        innocent = float(storm_run.job("bystander").tenant)
        wrong = replace(
            f0, evidence={**f0.evidence, "aggressor": innocent}
        )
        report = verify_interference([wrong], storm_run.telemetry)
        assert report.n_contradicted == 1
        assert "dominated instead" in report.contradictions[0].detail

    def test_ghost_tenant_contradicted(self, storm_run):
        f0 = _victim_findings(storm_run)[0]
        ghost = replace(f0, evidence={**f0.evidence, "aggressor": 99.0})
        report = verify_interference([ghost], storm_run.telemetry)
        assert report.n_contradicted == 1
        assert "job ledger" in report.contradictions[0].detail

    def test_shifted_window_contradicted(self, storm_run):
        f0 = _victim_findings(storm_run)[0]
        far = storm_run.elapsed + 100.0
        shifted = replace(
            f0,
            evidence={**f0.evidence, "t_start": far, "t_end": far + 10.0},
        )
        report = verify_interference([shifted], storm_run.telemetry)
        assert report.n_contradicted == 1
        assert "not resident" in report.contradictions[0].detail


# -- bandwidth-hog attribution --------------------------------------------------

class TestBandwidthHog:
    def test_hog_accused_on_device_and_confirmed(self, hog_run):
        findings = _victim_findings(hog_run)
        assert findings, "victim next to a bandwidth hog should show a finding"
        want = float(hog_run.job("hog").tenant)
        assert all(f.evidence["aggressor"] == want for f in findings)
        bw = [f for f in findings if f.evidence["mds"] == 0.0]
        assert bw and all(f.evidence["device"] >= 0 for f in bw)
        report = verify_interference(findings, hog_run.telemetry)
        assert report.all_confirmed, report.format()

    def test_bystander_repoint_contradicted(self, hog_run):
        f0 = _victim_findings(hog_run)[0]
        innocent = float(hog_run.job("bystander").tenant)
        wrong = replace(
            f0, evidence={**f0.evidence, "aggressor": innocent}
        )
        report = verify_interference([wrong], hog_run.telemetry)
        assert report.n_contradicted == 1


# -- negative control -----------------------------------------------------------

class TestHealthy:
    def test_no_findings_next_to_idle_tenant(self, healthy_run):
        assert _victim_findings(healthy_run) == []

    def test_unknown_victim_tenant_yields_nothing(self, healthy_run):
        vic = healthy_run.job("victim")
        assert find_interference(vic.trace, healthy_run.telemetry, 99) == []


# -- report mechanics -----------------------------------------------------------

class TestReport:
    def test_non_interference_finding_unverified(self, storm_run):
        shape = Finding(
            code="broad-right-shoulder",
            severity=0.5,
            message="shape",
            recommendation="",
            evidence={},
        )
        report = verify_interference([shape], storm_run.telemetry)
        assert report.verdicts[0].verdict == UNVERIFIED

    def test_mixed_report_sorts_contradictions_first(self, storm_run):
        findings = _victim_findings(storm_run)
        f0 = findings[0]
        ghost = replace(f0, evidence={**f0.evidence, "aggressor": 99.0})
        report = verify_interference(
            findings + [ghost], storm_run.telemetry
        )
        assert report.verdicts[0].verdict == CONTRADICTED
        assert not report.all_confirmed
        assert report.n_confirmed >= 1
