"""Unit tests for OST pool, extent locks, MDS, and page cache."""

import numpy as np
import pytest

from repro.iosys.cache import PageCache
from repro.iosys.locks import ExtentLockTracker
from repro.iosys.machine import MachineConfig, MiB
from repro.iosys.mds import MetadataServer
from repro.iosys.ost import OstPool
from repro.iosys.striping import StripeLayout
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams


def layout(stripe_count=4, n_osts=8):
    return StripeLayout(
        stripe_size=MiB, stripe_count=stripe_count, n_osts=n_osts
    )


class TestExtentLocks:
    def test_first_writer_gets_grant_free(self):
        locks = ExtentLockTracker(revoke_cost=0.01)
        assert locks.write_penalty(1, layout(), 0, 2 * MiB) == 0.0
        assert locks.grants == 2
        assert locks.revocations == 0

    def test_ownership_change_charges_revocation(self):
        locks = ExtentLockTracker(revoke_cost=0.01)
        lo = layout()
        locks.write_penalty(1, lo, 0, MiB)  # full stripe, client 1
        p = locks.write_penalty(2, lo, 0, MiB)  # client 2 takes it over
        assert locks.revocations == 1
        # full-stripe takeover is discounted
        assert p == pytest.approx(0.01 * 0.2)

    def test_partial_stripe_revocation_full_price(self):
        locks = ExtentLockTracker(revoke_cost=0.01)
        lo = layout()
        locks.write_penalty(1, lo, 0, MiB // 2)
        p = locks.write_penalty(2, lo, 0, MiB // 2)
        assert p == pytest.approx(0.01)

    def test_same_client_rewrites_free(self):
        locks = ExtentLockTracker(revoke_cost=0.01)
        lo = layout()
        locks.write_penalty(3, lo, 0, 4 * MiB)
        assert locks.write_penalty(3, lo, 0, 4 * MiB) == 0.0
        assert locks.revocations == 0

    def test_contention_scale_multiplies(self):
        locks = ExtentLockTracker(revoke_cost=0.01)
        lo = layout()
        locks.write_penalty(1, lo, 0, MiB // 2)
        p = locks.write_penalty(2, lo, 0, MiB // 2, scale=10.0)
        assert p == pytest.approx(0.1)

    def test_owner_of_and_reset(self):
        locks = ExtentLockTracker(revoke_cost=0.0)
        lo = layout()
        locks.write_penalty(5, lo, 0, MiB)
        assert locks.owner_of(0) == 5
        locks.reset()
        assert locks.owner_of(0) is None


class TestOstPool:
    def make(self, **over):
        cfg = MachineConfig.testbox(**over)
        return OstPool(cfg, RngStreams(0)), cfg

    def test_write_penalty_counts_rpcs(self):
        pool, cfg = self.make(rpc_overhead=1e-3)
        lo = layout(n_osts=cfg.n_osts)
        p = pool.write_penalty(lo, 0, 3 * MiB)
        assert p == pytest.approx(3e-3)  # 3 RPCs, no partial stripes

    def test_rmw_penalty_scales_with_contention(self):
        pool, cfg = self.make(rmw_cost=2e-3)
        lo = layout(n_osts=cfg.n_osts)
        p1 = pool.write_penalty(lo, 100, MiB)  # 2 partial stripes
        p2 = pool.write_penalty(lo, 100, MiB, contention=5.0)
        assert p1 == pytest.approx(2 * 2e-3)
        assert p2 == pytest.approx(2 * 2e-3 * 5.0)
        assert pool.rmw_events == 4

    def test_byte_accounting(self):
        pool, cfg = self.make()
        lo = layout(n_osts=cfg.n_osts)
        pool.write_penalty(lo, 0, 2 * MiB)
        pool.read_penalty(lo, 0, 3 * MiB)
        assert pool.bytes_written.sum() == 2 * MiB
        assert pool.bytes_read.sum() == 3 * MiB

    def test_load_imbalance_balanced(self):
        pool, cfg = self.make()
        lo = layout(stripe_count=4, n_osts=cfg.n_osts)
        pool.write_penalty(lo, 0, 8 * MiB)
        assert pool.load_imbalance() == pytest.approx(
            (8 * MiB / 4) / (8 * MiB / cfg.n_osts)
        )

    def test_service_factor_deterministic_when_noise_free(self):
        pool, _ = self.make(noise_sigma=0.0, tail_prob=0.0)
        assert pool.service_factor("x") == 1.0

    def test_service_factor_reproducible(self):
        a, _ = self.make(noise_sigma=0.3)
        b, _ = self.make(noise_sigma=0.3)
        assert [a.service_factor("s") for _ in range(5)] == [
            b.service_factor("s") for _ in range(5)
        ]


class TestMetadataServer:
    def test_zero_latency_is_instant(self):
        eng = Engine()
        mds = MetadataServer(eng, MachineConfig.testbox(), RngStreams(0))
        ev = mds.request("open")
        eng.run()
        assert ev.ok
        assert mds.ops["open"] == 1

    def test_storm_queues(self):
        eng = Engine()
        cfg = MachineConfig.testbox(mds_latency=1e-3, mds_concurrency=2)
        mds = MetadataServer(eng, cfg, RngStreams(0))
        finish = []
        for _ in range(10):
            mds.request("open").add_callback(lambda e: finish.append(eng.now))
        eng.run()
        # 10 opens, 2 at a time, 1 ms each -> last completes around 5 ms
        assert finish[-1] == pytest.approx(5e-3, rel=0.05)

    def test_op_cost_classes_differ(self):
        eng = Engine()
        cfg = MachineConfig.testbox(mds_latency=1e-3, noise_sigma=0.0)
        mds = MetadataServer(eng, cfg, RngStreams(0))
        t = {}
        for op in ("open_create", "close"):
            ev = mds.request(op)
            ev.add_callback(lambda e, op=op: t.__setitem__(op, eng.now))
        eng.run()
        assert t["open_create"] > t["close"] * 2

    def test_unknown_op_rejected(self):
        eng = Engine()
        mds = MetadataServer(eng, MachineConfig.testbox(), RngStreams(0))
        with pytest.raises(ValueError):
            mds.request("chmod")


class TestPageCache:
    def make(self, quota=100.0, tasks=2, mem_bw=1000.0):
        eng = Engine()
        return eng, PageCache(eng, quota, tasks, mem_bw, writeback_delay=1.0)

    def test_absorb_respects_quota(self):
        _eng, cache = self.make(quota=100)
        assert cache.absorb(0, 60) == 60
        assert cache.absorb(0, 60) == 40
        assert cache.absorb(0, 60) == 0
        assert cache.task_dirty(0) == 100

    def test_quota_is_per_task(self):
        _eng, cache = self.make(quota=100, tasks=2)
        cache.absorb(0, 150)
        assert cache.absorb(1, 150) == 100
        assert cache.dirty == 200

    def test_pressure_fraction(self):
        _eng, cache = self.make(quota=100, tasks=2)
        assert cache.pressure() == 0.0
        cache.absorb(0, 100)
        assert cache.pressure() == pytest.approx(0.5)
        cache.absorb(1, 100)
        assert cache.pressure() == pytest.approx(1.0)

    def test_mark_clean_frees_quota(self):
        _eng, cache = self.make(quota=100)
        cache.absorb(0, 100)
        cache.mark_clean(0, 30)
        assert cache.free_quota(0) == pytest.approx(30)
        cache.mark_clean(0, 1000)  # over-cleaning clamps at zero
        assert cache.task_dirty(0) == 0.0

    def test_sync_event_fires_when_clean(self):
        eng, cache = self.make(quota=100)
        cache.absorb(0, 50)
        ev = cache.sync_event()
        assert not ev.triggered
        cache.mark_clean(0, 50)
        eng.run()
        assert ev.ok

    def test_sync_event_immediate_when_already_clean(self):
        eng, cache = self.make()
        ev = cache.sync_event()
        assert ev.triggered

    def test_schedule_writeback_marks_clean_after_flush(self):
        eng, cache = self.make(quota=100)
        cache.absorb(0, 80)
        flushed = []

        def flush_fn(nbytes):
            flushed.append(nbytes)
            return eng.timeout(2.0)

        cache.schedule_writeback(0, 80, flush_fn)
        eng.run()
        assert flushed == [80]
        assert cache.dirty == 0
        assert eng.now == pytest.approx(3.0)  # 1.0 delay + 2.0 flush

    def test_bad_parameters_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError):
            PageCache(eng, -1, 2, 100.0)
        with pytest.raises(ValueError):
            PageCache(eng, 10, 2, 0.0)
