"""Unit tests for the trace event containers."""

import numpy as np
import pytest

from repro.ipm.events import Trace, TraceEvent


def ev(rank=0, op="write", size=100, t=0.0, dur=1.0, phase="", path="/f",
       offset=0, degraded=False):
    return TraceEvent(
        rank=rank, op=op, path=path, fd=3, offset=offset, size=size,
        t_start=t, duration=dur, phase=phase, degraded=degraded,
    )


def sample_trace():
    tr = Trace()
    tr.append(ev(rank=0, op="write", size=100, t=0.0, dur=1.0, phase="p0"))
    tr.append(ev(rank=1, op="write", size=200, t=0.5, dur=2.0, phase="p0"))
    tr.append(ev(rank=0, op="read", size=300, t=3.0, dur=1.5, phase="p1"))
    tr.append(ev(rank=1, op="pread", size=400, t=3.5, dur=0.5, phase="p1",
                 degraded=True))
    tr.append(ev(rank=0, op="open", size=0, t=5.0, dur=0.1))
    return tr


class TestTraceBasics:
    def test_len_and_iteration(self):
        tr = sample_trace()
        assert len(tr) == 5
        events = list(tr)
        assert events[0].op == "write"
        assert events[3].degraded

    def test_event_properties(self):
        e = ev(size=100, t=2.0, dur=4.0)
        assert e.t_end == 6.0
        assert e.rate == 25.0
        assert ev(dur=0.0).rate == float("inf")

    def test_columns_are_numpy(self):
        tr = sample_trace()
        assert tr.sizes.dtype == np.int64
        assert tr.durations.dtype == np.float64
        assert np.array_equal(tr.ends, tr.starts + tr.durations)

    def test_record_fast_path_equivalent(self):
        a = Trace()
        a.append(ev())
        b = Trace()
        b.record(0, "write", "/f", 3, 0, 100, 0.0, 1.0)
        assert a[0] == b[0]

    def test_extend_concatenates(self):
        a, b = sample_trace(), sample_trace()
        a.extend(b)
        assert len(a) == 10


class TestFilters:
    def test_reads_writes_split(self):
        tr = sample_trace()
        assert len(tr.writes()) == 2
        assert len(tr.reads()) == 2
        assert len(tr.data_ops()) == 4

    def test_filter_by_rank_and_phase(self):
        tr = sample_trace()
        assert len(tr.filter(ranks=[0])) == 3
        assert len(tr.filter(phase="p1")) == 2
        assert len(tr.filter(ranks=[1], phase="p0")) == 1

    def test_filter_by_size_window(self):
        tr = sample_trace()
        assert len(tr.filter(min_size=200)) == 3
        assert len(tr.filter(max_size=200)) == 3
        assert len(tr.filter(min_size=200, max_size=300)) == 2

    def test_filter_by_time_window(self):
        tr = sample_trace()
        assert len(tr.filter(t_min=3.0)) == 3
        assert len(tr.filter(t_max=3.0)) == 2

    def test_filter_by_path(self):
        tr = sample_trace()
        tr.append(ev(path="/other"))
        assert len(tr.filter(path="/other")) == 1

    def test_filters_compose(self):
        tr = sample_trace()
        sub = tr.filter(ops=["write"], ranks=[1])
        assert len(sub) == 1
        assert sub[0].size == 200


class TestSummaries:
    def test_totals_and_span(self):
        tr = sample_trace()
        assert tr.total_bytes == 1000
        assert tr.t_first == 0.0
        assert tr.t_last == 5.1
        assert tr.span == pytest.approx(5.1)

    def test_empty_trace_summaries(self):
        tr = Trace()
        assert tr.total_bytes == 0
        assert tr.span == 0.0
        assert tr.phase_names() == []

    def test_phase_names_in_order(self):
        tr = sample_trace()
        assert tr.phase_names() == ["p0", "p1", ""]

    def test_by_phase(self):
        groups = sample_trace().by_phase()
        assert set(groups) == {"p0", "p1", ""}
        assert len(groups["p0"]) == 2

    def test_per_rank_totals(self):
        tr = sample_trace()
        totals = tr.per_rank_totals(nranks=3)
        assert totals[0] == pytest.approx(1.0 + 1.5 + 0.1)
        assert totals[1] == pytest.approx(2.5)
        assert totals[2] == 0.0

    def test_degraded_flags(self):
        tr = sample_trace()
        assert tr.degraded_flags.sum() == 1
