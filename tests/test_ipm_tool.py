"""Unit tests for the IPM-I/O interceptor, profiles, and reports."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipm.interceptor import IpmCollector, IpmIo
from repro.ipm.profile import IoProfile, StreamingHistogram
from repro.ipm.report import build_report, format_report
from repro.iosys.machine import MachineConfig, MiB
from repro.iosys.posix import O_CREAT, O_RDWR, IoSystem
from repro.mpi.runtime import World
from repro.sim.rng import RngStreams


def traced_world(ntasks=2, mode="trace", overhead=0.0):
    w = World(nranks=ntasks)
    iosys = IoSystem(
        w.engine, MachineConfig.testbox(), ntasks=ntasks, rng=RngStreams(0)
    )
    collector = IpmCollector(mode=mode, overhead=overhead)
    w.set_extras_factory(
        lambda rank: {"io": IpmIo.wrap(iosys.posix_for(rank), collector)}
    )
    return w, collector


class TestInterceptor:
    def test_records_every_call_kind(self):
        w, coll = traced_world(1)

        def fn(ctx):
            io = ctx.io
            fd = yield from io.open("/f", O_CREAT | O_RDWR)
            yield from io.write(fd, 100)
            yield from io.pwrite(fd, 100, 0)
            yield from io.lseek(fd, 0)
            yield from io.read(fd, 50)
            yield from io.pread(fd, 50, 10)
            yield from io.stat("/f")
            yield from io.fsync(fd)
            yield from io.close(fd)
            return None

        w.run(fn)
        ops = list(coll.trace.ops)
        assert ops == [
            "open", "write", "pwrite", "lseek", "read", "pread",
            "stat", "fsync", "close",
        ]

    def test_fd_table_resolves_paths(self):
        w, coll = traced_world(1)

        def fn(ctx):
            fd = yield from ctx.io.open("/data/file1", O_CREAT | O_RDWR)
            yield from ctx.io.write(fd, 10)
            yield from ctx.io.close(fd)
            return None

        w.run(fn)
        assert all(p == "/data/file1" for p in coll.trace._path)

    def test_region_labels_tag_events(self):
        w, coll = traced_world(1)

        def fn(ctx):
            fd = yield from ctx.io.open("/f", O_CREAT | O_RDWR)
            ctx.io.region("phase_a")
            yield from ctx.io.write(fd, 10)
            ctx.io.region("phase_b")
            yield from ctx.io.write(fd, 10)
            ctx.io.region("")
            yield from ctx.io.close(fd)
            return None

        w.run(fn)
        writes = coll.trace.writes()
        assert list(writes.phases) == ["phase_a", "phase_b"]

    def test_durations_match_simulated_time(self):
        w, coll = traced_world(1)

        def fn(ctx):
            fd = yield from ctx.io.open("/f", O_CREAT | O_RDWR)
            res = yield from ctx.io.pwrite(fd, 4 * MiB, 0)
            return res.duration

        duration = w.run(fn)[0]
        traced = coll.trace.writes().durations[0]
        assert traced == pytest.approx(duration)

    def test_overhead_costs_time(self):
        w1, _ = traced_world(1, overhead=0.0)
        w2, _ = traced_world(1, overhead=0.01)

        def fn(ctx):
            fd = yield from ctx.io.open("/f", O_CREAT | O_RDWR)
            for _ in range(10):
                yield from ctx.io.write(fd, 10)
            yield from ctx.io.close(fd)
            return ctx.now

        t1 = w1.run(fn)[0]
        t2 = w2.run(fn)[0]
        assert t2 >= t1 + 0.11  # 11 traced calls with overhead

    def test_profile_mode_collects_no_events(self):
        w, coll = traced_world(1, mode="profile")

        def fn(ctx):
            fd = yield from ctx.io.open("/f", O_CREAT | O_RDWR)
            for _ in range(20):
                yield from ctx.io.write(fd, 4096)
            yield from ctx.io.close(fd)
            return None

        w.run(fn)
        assert len(coll.trace) == 0
        assert coll.profile.total_events() == 22
        assert coll.calls == 22

    def test_both_mode_profile_matches_trace(self):
        w, coll = traced_world(2, mode="both")

        def fn(ctx):
            fd = yield from ctx.io.open("/f", O_CREAT | O_RDWR)
            for i in range(10):
                yield from ctx.io.pwrite(fd, 64 * 1024, i * MiB)
            yield from ctx.io.close(fd)
            return None

        w.run(fn)
        traced = coll.trace.filter(ops=["pwrite"]).durations
        hist = coll.profile.histogram("pwrite")
        assert hist.n == len(traced)
        assert hist.mean == pytest.approx(traced.mean(), rel=1e-9)
        assert hist.max == pytest.approx(traced.max())


class TestStreamingHistogram:
    def test_moments_match_numpy(self):
        h = StreamingHistogram()
        data = np.random.default_rng(0).lognormal(0, 1, 500)
        for x in data:
            h.observe(x)
        assert h.n == 500
        assert h.mean == pytest.approx(data.mean())
        assert h.std == pytest.approx(data.std(ddof=1), rel=1e-6)
        assert h.min == data.min() and h.max == data.max()

    def test_under_and_overflow_counted(self):
        h = StreamingHistogram(t_min=1e-3, t_max=1e3)
        h.observe(1e-9)
        h.observe(1e9)
        h.observe(1.0)
        assert h.underflow == 1 and h.overflow == 1
        assert h.counts.sum() == 1
        assert h.n == 3

    def test_quantile_approximates_sample_quantile(self):
        h = StreamingHistogram(bins_per_decade=16)
        data = np.random.default_rng(1).lognormal(0, 0.5, 4000)
        for x in data:
            h.observe(x)
        for q in (0.1, 0.5, 0.9):
            approx = h.quantile(q)
            exact = np.quantile(data, q)
            assert approx == pytest.approx(exact, rel=0.15)

    def test_merge_equivalent_to_combined(self):
        a, b, c = (StreamingHistogram() for _ in range(3))
        xs = np.random.default_rng(2).lognormal(0, 1, 200)
        for i, x in enumerate(xs):
            (a if i % 2 else b).observe(x)
            c.observe(x)
        a.merge(b)
        assert np.array_equal(a.counts, c.counts)
        assert a.mean == pytest.approx(c.mean)
        assert a.n == c.n

    def test_merge_rejects_mismatched_binning(self):
        a = StreamingHistogram(bins_per_decade=8)
        b = StreamingHistogram(bins_per_decade=4)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_memory_footprint_constant(self):
        h = StreamingHistogram()
        base = h.nbytes()
        for x in np.linspace(0.001, 100, 10000):
            h.observe(x)
        assert h.nbytes() == base  # O(1) memory: the profiling claim

    def test_edges_are_log_spaced(self):
        h = StreamingHistogram(t_min=1e-2, t_max=1e2, bins_per_decade=4)
        edges = h.bin_edges()
        ratios = edges[1:] / edges[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StreamingHistogram(t_min=0)
        with pytest.raises(ValueError):
            StreamingHistogram(t_min=10, t_max=1)
        with pytest.raises(ValueError):
            StreamingHistogram(bins_per_decade=0)
        h = StreamingHistogram()
        with pytest.raises(ValueError):
            h.quantile(1.5)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=1e-5, max_value=1e3),
            min_size=1,
            max_size=200,
        )
    )
    def test_property_counts_and_moments(self, values):
        h = StreamingHistogram()
        for v in values:
            h.observe(v)
        assert h.n == len(values)
        assert h.counts.sum() + h.underflow + h.overflow == len(values)
        assert h.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-12)
        assert h.min == min(values) and h.max == max(values)


class TestIoProfile:
    def test_size_classes(self):
        assert IoProfile.size_class(1024) == "tiny(<3KB)"
        assert IoProfile.size_class(512 * 1024) == "small(<1MB)"
        assert IoProfile.size_class(2 * MiB) == "medium(<16MB)"
        assert IoProfile.size_class(1 << 30) == "large"

    def test_histogram_merges_classes(self):
        p = IoProfile()
        p.observe("write", 1024, 0.1)
        p.observe("write", 2 * MiB, 0.2)
        p.observe("read", 1024, 0.3)
        assert p.histogram("write").n == 2
        assert p.histogram("write", "tiny(<3KB)").n == 1
        assert p.histogram("read").n == 1
        assert p.histogram("unlink").n == 0
        assert len(p.keys()) == 3


class TestReport:
    def make_trace(self):
        w, coll = traced_world(2)

        def fn(ctx):
            fd = yield from ctx.io.open("/f", O_CREAT | O_RDWR)
            yield from ctx.io.pwrite(fd, 2 * MiB, ctx.rank * 4 * MiB)
            yield from ctx.io.pread(fd, MiB, ctx.rank * 4 * MiB)
            yield from ctx.io.close(fd)
            return None

        w.run(fn)
        return coll.trace, w.elapsed

    def test_build_report_aggregates(self):
        trace, elapsed = self.make_trace()
        rep = build_report(trace, ntasks=2, wallclock=elapsed)
        assert rep.total_calls == len(trace)
        assert rep.ops["pwrite"].calls == 2
        assert rep.ops["pwrite"].bytes == 4 * MiB
        assert rep.ops["pread"].bytes == 2 * MiB
        assert "/f" in rep.files
        assert rep.aggregate_data_rate > 0

    def test_format_report_contains_key_rows(self):
        trace, elapsed = self.make_trace()
        text = format_report(build_report(trace, 2, elapsed))
        assert "##IPM-I/O" in text
        assert "pwrite" in text
        assert "/f" in text

    def test_wallclock_defaults_to_span(self):
        trace, _ = self.make_trace()
        rep = build_report(trace, 2)
        assert rep.wallclock == pytest.approx(trace.span)
