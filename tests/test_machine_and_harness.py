"""Unit tests for machine configuration, the job harness, and the
experiment runner plumbing."""

import pytest

from repro.apps.harness import AppResult, SimJob
from repro.experiments.runner import ExperimentResult, format_table
from repro.iosys.machine import GiB, KiB, MachineConfig, MiB
from repro.iosys.posix import O_CREAT, O_RDWR


class TestMachineConfig:
    def test_presets_have_paper_topologies(self):
        f = MachineConfig.franklin()
        assert f.n_osts == 48  # 24 OSS x 2 OST
        assert f.tasks_per_node == 4  # quad-core XT4
        assert f.strided_readahead is True  # the bug is present
        j = MachineConfig.jaguar()
        assert j.n_osts == 144  # 72 OSS x 2 OST
        assert j.strided_readahead is False

    def test_patched_franklin_differs_only_in_readahead(self):
        a = MachineConfig.franklin()
        b = MachineConfig.franklin_patched()
        assert a.strided_readahead and not b.strided_readahead
        assert a.with_overrides(strided_readahead=False) == b

    def test_with_overrides_does_not_mutate_preset(self):
        a = MachineConfig.franklin()
        b = a.with_overrides(fs_bw=1.0 * GiB)
        assert a.fs_bw != b.fs_bw
        assert MachineConfig.franklin().fs_bw == a.fs_bw

    def test_fair_share_arithmetic(self):
        f = MachineConfig.franklin()
        # the paper: ~16 MB/s fair share for 1024 tasks of a 16 GB/s system
        assert f.fair_share_per_task(1024) == pytest.approx(16 * MiB)

    def test_node_share_capped_by_client(self):
        f = MachineConfig.franklin()
        assert f.node_share(1) == f.client_bw
        assert f.node_share(1024) == pytest.approx(f.fs_bw / 1024)
        assert f.node_share(0) == f.node_share(1)

    def test_nodes_for_rounds_up(self):
        f = MachineConfig.franklin()
        assert f.nodes_for(1) == 1
        assert f.nodes_for(4) == 1
        assert f.nodes_for(5) == 2

    def test_validation_rejects_bad_values(self):
        with pytest.raises(ValueError):
            MachineConfig(tasks_per_node=0)
        with pytest.raises(ValueError):
            MachineConfig(stripe_size=0)
        with pytest.raises(ValueError):
            MachineConfig(discipline_weights={})
        with pytest.raises(ValueError):
            MachineConfig(discipline_weights={0: 1.0})
        with pytest.raises(ValueError):
            MachineConfig(ost_slowdown={999: 2.0})
        with pytest.raises(ValueError):
            MachineConfig(ost_slowdown={0: 0.5})

    def test_units(self):
        assert KiB == 1024 and MiB == 1024**2 and GiB == 1024**3


class TestSimJob:
    def test_extras_exposed_on_context(self):
        job = SimJob(MachineConfig.testbox(), 2)

        def fn(ctx):
            yield ctx.engine.timeout(0)
            assert ctx.machine.name == "testbox"
            assert ctx.iosys is job.iosys
            assert ctx.collector is job.collector
            assert ctx.io.rank == ctx.rank
            return True

        assert job.run(fn).per_rank == [True, True]

    def test_result_fields(self):
        job = SimJob(MachineConfig.testbox(), 3)

        def fn(ctx):
            fd = yield from ctx.io.open(f"/f{ctx.rank}", O_CREAT | O_RDWR)
            yield from ctx.io.pwrite(fd, 1024, 0)
            yield from ctx.io.close(fd)
            return ctx.rank

        result = job.run(fn)
        assert isinstance(result, AppResult)
        assert result.ntasks == 3
        assert result.per_rank == [0, 1, 2]
        assert result.total_bytes == 3 * 1024
        assert result.elapsed > 0

    def test_seed_controls_rng(self):
        def run(seed):
            job = SimJob(
                MachineConfig.testbox(noise_sigma=0.3, dirty_quota=0.0),
                4,
                seed=seed,
            )

            def fn(ctx):
                fd = yield from ctx.io.open(
                    f"/f{ctx.rank}", O_CREAT | O_RDWR
                )
                res = yield from ctx.io.pwrite(fd, 4 * MiB, 0)
                return res.duration

            return job.run(fn).per_rank

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_profile_mode_passthrough(self):
        job = SimJob(MachineConfig.testbox(), 2, ipm_mode="profile")

        def fn(ctx):
            fd = yield from ctx.io.open(f"/f{ctx.rank}", O_CREAT | O_RDWR)
            yield from ctx.io.pwrite(fd, 1024, 0)
            yield from ctx.io.close(fd)
            return None

        result = job.run(fn)
        assert len(result.trace) == 0
        assert result.collector.profile.total_events() == 6


class TestExperimentResult:
    def test_all_verdicts_hold(self):
        r = ExperimentResult("x", "small", verdicts={"a": True, "b": True})
        assert r.all_verdicts_hold()
        r.verdicts["c"] = False
        assert not r.all_verdicts_hold()

    def test_format_table_alignment(self):
        text = format_table(
            "title",
            [{"name": "a", "v": 1.23456}, {"name": "bb", "v": 0.0}],
        )
        lines = text.splitlines()
        assert lines[0] == "title"
        assert len(set(len(ln) for ln in lines[1:])) <= 2  # aligned columns

    def test_format_table_explicit_columns(self):
        text = format_table("t", [{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[1]


class TestBackgroundLoad:
    def test_available_fraction_schedule(self):
        m = MachineConfig.testbox(
            background_load=((10.0, 20.0, 0.5), (15.0, 30.0, 0.25))
        )
        assert m.available_fraction(0.0) == 1.0
        assert m.available_fraction(12.0) == 0.5
        assert m.available_fraction(17.0) == 0.5   # strongest overlap wins
        assert m.available_fraction(25.0) == 0.75
        assert m.available_fraction(30.0) == 1.0   # half-open interval

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(background_load=((5.0, 5.0, 0.5),))
        with pytest.raises(ValueError):
            MachineConfig(background_load=((0.0, 1.0, 1.0),))

    def test_interference_slows_io_during_interval(self):
        def run(load):
            machine = MachineConfig.testbox(
                dirty_quota=0.0, background_load=load
            )
            job = SimJob(machine, 2)

            def fn(ctx):
                fd = yield from ctx.io.open(
                    f"/f{ctx.rank}", O_CREAT | O_RDWR
                )
                res = yield from ctx.io.pwrite(fd, 20 * 1024 * 1024, 0)
                yield from ctx.io.close(fd)
                return res.duration

            return job.run(fn).per_rank

        clean = run(())
        loaded = run(((0.0, 1e9, 0.6),))
        for c, l in zip(clean, loaded):
            assert l > 2.0 * c  # 60% taken -> ~2.5x slower
