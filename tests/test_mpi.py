"""Unit tests for the simulated MPI runtime and collectives."""

import pytest

from repro.mpi.comm import Communicator, Interconnect, MpiError
from repro.mpi.runtime import World


class TestBarrier:
    def test_all_ranks_wait_for_slowest(self):
        w = World(nranks=4)
        arrivals = []

        def fn(ctx):
            yield ctx.engine.timeout(ctx.rank * 1.0)
            yield from ctx.comm.barrier()
            arrivals.append((ctx.rank, ctx.now))

        w.run(fn)
        assert all(t == 3.0 for _r, t in arrivals)

    def test_multiple_barriers_in_sequence(self):
        w = World(nranks=3)

        def fn(ctx):
            for i in range(5):
                yield ctx.engine.timeout(0.5 if ctx.rank == 0 else 0.1)
                yield from ctx.comm.barrier()
            return ctx.now

        results = w.run(fn)
        assert results == [2.5] * 3


class TestCollectives:
    def test_bcast_from_nonzero_root(self):
        w = World(nranks=4)

        def fn(ctx):
            payload = "secret" if ctx.rank == 2 else None
            got = yield from ctx.comm.bcast(payload, root=2)
            return got

        assert w.run(fn) == ["secret"] * 4

    def test_gather_only_root_receives(self):
        w = World(nranks=4)

        def fn(ctx):
            got = yield from ctx.comm.gather(ctx.rank * 10, root=1)
            return got

        results = w.run(fn)
        assert results[1] == [0, 10, 20, 30]
        assert results[0] is None and results[2] is None

    def test_scatter(self):
        w = World(nranks=3)

        def fn(ctx):
            values = ["a", "b", "c"] if ctx.rank == 0 else None
            got = yield from ctx.comm.scatter(values, root=0)
            return got

        assert w.run(fn) == ["a", "b", "c"]

    def test_scatter_wrong_length_raises(self):
        w = World(nranks=3)

        def fn(ctx):
            values = ["a", "b"] if ctx.rank == 0 else None
            got = yield from ctx.comm.scatter(values, root=0)
            return got

        with pytest.raises(MpiError):
            w.run(fn)

    def test_allgather(self):
        w = World(nranks=4)

        def fn(ctx):
            got = yield from ctx.comm.allgather(ctx.rank**2)
            return got

        assert w.run(fn) == [[0, 1, 4, 9]] * 4

    def test_reduce_custom_op(self):
        w = World(nranks=4)

        def fn(ctx):
            got = yield from ctx.comm.reduce(
                ctx.rank + 1, op=lambda a, b: a * b, root=0
            )
            return got

        assert w.run(fn)[0] == 24

    def test_allreduce_sum_default(self):
        w = World(nranks=5)

        def fn(ctx):
            return (yield from ctx.comm.allreduce(ctx.rank))

        assert w.run(fn) == [10] * 5

    def test_alltoall(self):
        w = World(nranks=3)

        def fn(ctx):
            out = [(ctx.rank, dst) for dst in range(3)]
            got = yield from ctx.comm.alltoall(out)
            return got

        results = w.run(fn)
        assert results[1] == [(0, 1), (1, 1), (2, 1)]

    def test_split_builds_subcommunicators(self):
        w = World(nranks=6)

        def fn(ctx):
            sub = yield from ctx.comm.split(ctx.rank % 2)
            total = yield from sub.allreduce(ctx.rank)
            return (sub.size, sub.rank, total)

        results = w.run(fn)
        assert results[0] == (3, 0, 0 + 2 + 4)
        assert results[1] == (3, 0, 1 + 3 + 5)
        assert results[5] == (3, 2, 9)

    def test_collective_order_mismatch_detected(self):
        w = World(nranks=2)

        def fn(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.barrier()
            else:
                yield from ctx.comm.bcast("x", root=0)

        with pytest.raises(MpiError, match="mismatch"):
            w.run(fn)

    def test_root_mismatch_detected(self):
        w = World(nranks=2)

        def fn(ctx):
            got = yield from ctx.comm.bcast("x", root=ctx.rank)
            return got

        with pytest.raises(MpiError, match="root mismatch"):
            w.run(fn)


class TestPointToPoint:
    def test_send_then_recv(self):
        w = World(nranks=2)

        def fn(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(1, {"k": 1}, tag=5)
                return None
            got = yield from ctx.comm.recv(0, tag=5)
            return got

        assert w.run(fn)[1] == {"k": 1}

    def test_recv_posted_before_send(self):
        w = World(nranks=2)

        def fn(ctx):
            if ctx.rank == 1:
                got = yield from ctx.comm.recv(0, tag=0)
                return got
            yield ctx.engine.timeout(2.0)
            yield from ctx.comm.send(1, "late", tag=0)
            return None

        assert w.run(fn)[1] == "late"

    def test_tags_do_not_cross(self):
        w = World(nranks=2)

        def fn(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(1, "tagA", tag="a")
                yield from ctx.comm.send(1, "tagB", tag="b")
                return None
            b = yield from ctx.comm.recv(0, tag="b")
            a = yield from ctx.comm.recv(0, tag="a")
            return (a, b)

        assert w.run(fn)[1] == ("tagA", "tagB")

    def test_message_order_preserved_per_tag(self):
        w = World(nranks=2)

        def fn(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    yield from ctx.comm.send(1, i)
                return None
            got = []
            for _ in range(5):
                got.append((yield from ctx.comm.recv(0)))
            return got

        assert w.run(fn)[1] == [0, 1, 2, 3, 4]


class TestInterconnectCosts:
    def test_zero_cost_default(self):
        ic = Interconnect()
        assert ic.p2p_cost(1e9) == 0.0
        assert ic.collective_cost(1024, 1e9) == 0.0

    def test_alpha_beta_model(self):
        ic = Interconnect(latency=1e-6, bandwidth=1e9)
        assert ic.p2p_cost(1e9) == pytest.approx(1.0 + 1e-6)
        # 1024 ranks -> 10 latency steps
        assert ic.collective_cost(1024, 0.0) == pytest.approx(10e-6)

    def test_costs_advance_simulated_time(self):
        w = World(nranks=2, interconnect=Interconnect(latency=0.5))

        def fn(ctx):
            yield from ctx.comm.barrier()
            return ctx.now

        results = w.run(fn)
        assert all(t >= 0.5 for t in results)


class TestWorld:
    def test_rank_return_values_in_order(self):
        w = World(nranks=5)

        def fn(ctx):
            yield ctx.engine.timeout((5 - ctx.rank) * 0.1)
            return ctx.rank * 2

        assert w.run(fn) == [0, 2, 4, 6, 8]

    def test_deadlock_detection(self):
        w = World(nranks=2)

        def fn(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.barrier()  # rank 1 never arrives
            else:
                yield from ctx.comm.recv(0, tag=99)  # never sent

        with pytest.raises(RuntimeError, match="never finished"):
            w.run(fn)

    def test_extras_factory_injects_context(self):
        w = World(nranks=2)
        w.set_extras_factory(lambda rank: {"payload": rank * 100})

        def fn(ctx):
            yield ctx.engine.timeout(0)
            return ctx.payload

        assert w.run(fn) == [0, 100]

    def test_missing_extra_raises_attribute_error(self):
        w = World(nranks=1)

        def fn(ctx):
            yield ctx.engine.timeout(0)
            with pytest.raises(AttributeError):
                _ = ctx.nonexistent
            return True

        assert w.run(fn) == [True]

    def test_elapsed_is_last_rank_finish(self):
        w = World(nranks=3)

        def fn(ctx):
            yield ctx.engine.timeout(float(ctx.rank))
            return None

        w.run(fn)
        assert w.elapsed == 2.0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            World(nranks=0)
        with pytest.raises(ValueError):
            Communicator(World(nranks=1).engine, 0)


class TestScanAndSendrecv:
    def test_scan_inclusive_prefix(self):
        w = World(nranks=5)

        def fn(ctx):
            got = yield from ctx.comm.scan(ctx.rank + 1)
            return got

        assert w.run(fn) == [1, 3, 6, 10, 15]

    def test_scan_custom_op(self):
        w = World(nranks=4)

        def fn(ctx):
            got = yield from ctx.comm.scan(
                ctx.rank + 1, op=lambda a, b: a * b
            )
            return got

        assert w.run(fn) == [1, 2, 6, 24]

    def test_sendrecv_ring_shift(self):
        w = World(nranks=4)

        def fn(ctx):
            right = (ctx.rank + 1) % 4
            left = (ctx.rank - 1) % 4
            got = yield from ctx.comm.sendrecv(right, ctx.rank, left)
            return got

        assert w.run(fn) == [3, 0, 1, 2]

    def test_sendrecv_with_tags(self):
        w = World(nranks=2)

        def fn(ctx):
            other = 1 - ctx.rank
            got = yield from ctx.comm.sendrecv(
                other, f"from{ctx.rank}", other,
                sendtag="x", recvtag="x",
            )
            return got

        assert w.run(fn) == ["from1", "from0"]
