"""Unit tests for the MPI-IO middleware."""

import pytest

from repro.apps.harness import SimJob
from repro.apps.mpiio import MpiFile, _coalesce, _Slab
from repro.iosys.machine import MachineConfig, MiB


def job(ntasks=4, **kw):
    return SimJob(MachineConfig.testbox(), ntasks, **kw)


class TestCoalesce:
    def test_contiguous_merged(self):
        out = _coalesce([(0, 10), (10, 10), (20, 5)])
        assert out == [_Slab(0, 25)]

    def test_gaps_kept_separate(self):
        out = _coalesce([(0, 10), (20, 10)])
        assert out == [_Slab(0, 10), _Slab(20, 10)]

    def test_unsorted_input(self):
        out = _coalesce([(20, 10), (0, 10), (10, 10)])
        assert out == [_Slab(0, 30)]

    def test_zero_length_dropped(self):
        assert _coalesce([(5, 0), (0, 10)]) == [_Slab(0, 10)]

    def test_empty(self):
        assert _coalesce([]) == []


class TestMpiFile:
    def test_collective_open_creates_once(self):
        j = job(4)

        def fn(ctx):
            f = yield from MpiFile.open(ctx, "/shared", stripe_count=4)
            yield from f.close()
            return f.fd

        j.run(fn)
        assert j.iosys.lookup("/shared").layout.stripe_count == 4
        opens = j.collector.trace.filter(ops=["open"])
        assert len(opens) == 4

    def test_independent_write_read_roundtrip(self):
        j = job(4)

        def fn(ctx):
            f = yield from MpiFile.open(ctx, "/m")
            w = yield from f.write_at(ctx.rank * 4 * MiB, 2 * MiB)
            r = yield from f.read_at(ctx.rank * 4 * MiB, 2 * MiB)
            yield from f.close()
            return (w.duration, r.duration)

        results = j.run(fn).per_rank
        assert all(w > 0 and r > 0 for w, r in results)
        assert j.iosys.total_bytes_written() == 8 * MiB

    def test_seek_write_sequence(self):
        j = job(2)

        def fn(ctx):
            f = yield from MpiFile.open(ctx, "/m")
            yield from f.seek(ctx.rank * 10 * MiB)
            yield from f.write(MiB)
            yield from f.read(0)
            yield from f.close()
            return None

        j.run(fn)
        lseeks = j.collector.trace.filter(ops=["lseek"])
        assert len(lseeks) == 2

    def test_write_at_all_without_cb_is_independent_plus_barrier(self):
        j = job(4)

        def fn(ctx):
            f = yield from MpiFile.open(ctx, "/m")
            yield from f.write_at_all(ctx.rank * MiB, MiB)
            yield from f.close()
            return ctx.now

        times = j.run(fn).per_rank
        writes = j.collector.trace.writes()
        assert len(writes) == 4
        assert len(set(round(t, 9) for t in times)) == 1  # barrier synced

    def test_write_at_all_with_aggregators_coalesces(self):
        j = job(8)

        def fn(ctx):
            f = yield from MpiFile.open(ctx, "/m")
            yield from f.write_at_all(ctx.rank * MiB, MiB, cb_nodes=2)
            yield from f.close()
            return None

        j.run(fn)
        writes = j.collector.trace.writes()
        # 8 contiguous slabs -> 2 aggregator writes of 4 MiB each
        assert len(writes) == 2
        assert set(writes.sizes.tolist()) == {4 * MiB}
        assert j.iosys.total_bytes_written() == 8 * MiB

    def test_write_at_all_no_coalesce_keeps_slabs(self):
        j = job(4)

        def fn(ctx):
            f = yield from MpiFile.open(ctx, "/m")
            yield from f.write_at_all(
                ctx.rank * MiB, MiB, cb_nodes=1, coalesce=False
            )
            yield from f.close()
            return None

        j.run(fn)
        writes = j.collector.trace.writes()
        assert len(writes) == 4
        assert all(r == 0 for r in writes.ranks)  # all by the aggregator

    def test_cb_gaps_not_merged(self):
        j = job(4)

        def fn(ctx):
            f = yield from MpiFile.open(ctx, "/m")
            # leave holes between slabs
            yield from f.write_at_all(ctx.rank * 4 * MiB, MiB, cb_nodes=1)
            yield from f.close()
            return None

        j.run(fn)
        writes = j.collector.trace.writes()
        assert len(writes) == 4
