"""Per-tenant telemetry accounting and facility mechanics.

The load-bearing invariant is *conservation*: tenant attribution is a
partition of the server's counters, not an estimate, so on every
telemetry bucket the per-tenant bytes/RPCs/MDS ops must sum exactly to
the untagged per-OST and MDS totals -- including when the data path goes
through replicated or erasure-coded layouts, whose amplification
(mirror copies, parity units, reconstruction reads) must be charged to
the tenant that caused it.  The rest pins the facility's bookkeeping:
1-based tenant ids, the job-residency ledger, and the error surface.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iosys.machine import MachineConfig
from repro.iosys.scheduler import (
    Facility,
    TenantJob,
    TraceArrivals,
    assign_arrivals,
)
from repro.iosys.telemetry import TENANT_OST_FIELDS

_MIX = [
    TenantJob("vic", "checkpoint", 2, params={"nfiles": 3}),
    TenantJob("meta", "mds-storm", 2, arrival=0.1, params={"nfiles": 2}),
    TenantJob("bulk", "madbench", 2, arrival=0.2,
              params={"nrec": 2, "rec_mib": 1.0}),
]


def _machine(layout: str) -> MachineConfig:
    if layout == "replica":
        return MachineConfig.shared_testbox(
            replica_count=2, client_retry=True
        )
    if layout == "ec":
        return MachineConfig.shared_testbox(
            ec_k=2, ec_m=1, client_retry=True
        )
    return MachineConfig.shared_testbox()


def _assert_conserved(tl) -> None:
    assert tl is not None and tl.tenants
    for name in TENANT_OST_FIELDS:
        if name == "queue_depth":
            continue  # per-tenant maxima, not a partition
        summed = sum(fields[name] for fields in tl.tenant_ost.values())
        np.testing.assert_allclose(
            summed, tl.ost[name], err_msg=f"tenant sums diverge on {name}"
        )
    np.testing.assert_allclose(
        sum(tl.tenant_mds.values()),
        tl.mds["mds_ops"],
        err_msg="tenant sums diverge on mds_ops",
    )


# -- conservation ---------------------------------------------------------------

@pytest.mark.parametrize("layout", ["plain", "replica", "ec"])
def test_tenant_counters_partition_totals(layout):
    res = Facility(_machine(layout), _MIX, seed=7).run()
    _assert_conserved(res.telemetry)


@settings(max_examples=6, deadline=None)
@given(
    layout=st.sampled_from(["plain", "replica", "ec"]),
    seed=st.integers(min_value=0, max_value=10_000),
    storm_tasks=st.integers(min_value=1, max_value=4),
    arrival=st.floats(min_value=0.0, max_value=0.5,
                      allow_nan=False, allow_infinity=False),
)
def test_conservation_holds_across_mixes(layout, seed, storm_tasks, arrival):
    jobs = [
        TenantJob("vic", "checkpoint", 2, params={"nfiles": 2}),
        TenantJob("storm", "mds-storm", storm_tasks, arrival=arrival,
                  params={"nfiles": 2}),
    ]
    res = Facility(_machine(layout), jobs, seed=seed).run()
    _assert_conserved(res.telemetry)


def test_unattributed_bucket_stays_empty_when_all_jobs_tagged():
    res = Facility(_machine("plain"), _MIX, seed=7).run()
    tl = res.telemetry
    assert 0 not in tl.tenant_ost and 0 not in tl.tenant_mds
    assert sorted(tl.tenants) == [1, 2, 3]


# -- facility bookkeeping -------------------------------------------------------

def test_tenant_ids_are_one_based_and_ledgered():
    res = Facility(_machine("plain"), _MIX, seed=7).run()
    assert [jr.tenant for jr in res.jobs] == [1, 2, 3]
    ledger = {w.tenant: w for w in res.telemetry.job_windows}
    assert sorted(ledger) == [1, 2, 3]
    for jr in res.jobs:
        w = ledger[jr.tenant]
        assert w.name == jr.name
        assert w.t_start == pytest.approx(jr.t_start)
        assert w.t_end == pytest.approx(jr.t_end)
    assert res.job("meta").t_start == pytest.approx(0.1)


def test_job_lookup_raises_on_unknown_name():
    res = Facility(_machine("plain"), _MIX[:2], seed=7).run()
    with pytest.raises(KeyError, match="nosuch"):
        res.job("nosuch")


def test_duplicate_job_names_rejected():
    with pytest.raises(ValueError, match="duplicate job names"):
        Facility(
            _machine("plain"),
            [TenantJob("a", "idle", 1), TenantJob("a", "idle", 1)],
            seed=0,
        )


def test_empty_facility_rejected():
    with pytest.raises(ValueError, match="at least one job"):
        Facility(_machine("plain"), [], seed=0)


def test_facility_runs_only_once():
    fac = Facility(
        _machine("plain"),
        [TenantJob("a", "idle", 1, params={"nops": 1, "pause": 0.01})],
        seed=0,
    )
    fac.run()
    with pytest.raises(RuntimeError, match="already ran"):
        fac.run()


def test_bad_tenant_job_fields_rejected():
    with pytest.raises(ValueError, match="ntasks must be >= 1"):
        TenantJob("a", "idle", 0)
    with pytest.raises(ValueError, match="arrival must be >= 0"):
        TenantJob("a", "idle", 1, arrival=-1.0)
    with pytest.raises(ValueError, match="unknown workload"):
        Facility(
            _machine("plain"), [TenantJob("a", "nosuch", 1)], seed=0
        )


def test_trace_arrivals_must_cover_every_job():
    with pytest.raises(ValueError, match="2 arrivals but 3 jobs"):
        assign_arrivals(_MIX, TraceArrivals([0.0, 1.0]))


def test_tenancy_fixed_before_first_io():
    fac = Facility(_machine("plain"), _MIX, seed=7)
    fac.iosys.client_for(0)  # builds node 0's client lazily
    with pytest.raises(ValueError, match="tenancy is fixed"):
        fac.iosys.set_node_tenant(fac.iosys.node_of(0), 2)
