"""Unit tests for pattern detection, fadvise hints, and OST localisation."""

import numpy as np
import pytest

from repro.apps.madbench import MadbenchConfig, run_madbench
from repro.ensembles.locate import find_slow_osts, ost_ensembles
from repro.ipm.events import Trace, TraceEvent
from repro.ipm.patterns import PatternDetector, detect_patterns
from repro.iosys.machine import MachineConfig, MiB
from repro.iosys.posix import O_CREAT, O_RDWR, IoSystem
from repro.iosys.striping import StripeLayout
from repro.mpi.runtime import World
from repro.sim.rng import RngStreams


def feed(detector, rank, path, accesses):
    for off, size in accesses:
        detector.observe(rank, path, off, size)


class TestPatternDetector:
    def test_sequential_stream(self):
        d = PatternDetector()
        feed(d, 0, "/f", [(i * 100, 100) for i in range(10)])
        st = d.stream(0, "/f")
        assert st.classification == "sequential"
        assert st.advice() == "sequential"

    def test_strided_stream(self):
        d = PatternDetector()
        feed(d, 0, "/f", [(i * 1000, 100) for i in range(10)])
        st = d.stream(0, "/f")
        assert st.classification == "strided"
        assert st.dominant_stride == 1000
        assert st.advice() == "noreuse"

    def test_random_stream(self):
        rng = np.random.default_rng(0)
        d = PatternDetector()
        offsets = rng.integers(0, 10**9, size=20)
        feed(d, 0, "/f", [(int(o), 100) for o in offsets])
        assert d.stream(0, "/f").classification == "random"
        assert d.stream(0, "/f").advice() == "random"

    def test_rewrite_stream(self):
        d = PatternDetector()
        feed(d, 0, "/f", [(4096, 512)] * 8)
        assert d.stream(0, "/f").classification == "rewrite"

    def test_unknown_with_too_few_ops(self):
        d = PatternDetector()
        feed(d, 0, "/f", [(0, 10), (10, 10)])
        assert d.stream(0, "/f").classification == "unknown"
        assert d.stream(0, "/f").advice() is None

    def test_streams_keyed_by_rank_and_path(self):
        d = PatternDetector()
        feed(d, 0, "/a", [(i * 100, 100) for i in range(5)])
        feed(d, 1, "/a", [(i * 999, 10) for i in range(5)])
        assert d.stream(0, "/a").classification == "sequential"
        assert d.stream(1, "/a").classification == "strided"
        assert d.stream(2, "/a") is None
        assert len(d.all_streams()) == 2

    def test_size_statistics(self):
        d = PatternDetector()
        feed(d, 0, "/f", [(0, 10), (10, 30), (40, 20)])
        st = d.stream(0, "/f")
        assert (st.min_size, st.max_size) == (10, 30)
        assert st.mean_size == pytest.approx(20.0)
        assert st.total_bytes == 60

    def test_summary_counts(self):
        d = PatternDetector()
        feed(d, 0, "/a", [(i * 100, 100) for i in range(5)])
        feed(d, 1, "/b", [(i * 900, 100) for i in range(5)])
        assert d.summary() == {"sequential": 1, "strided": 1}

    def test_detect_patterns_from_trace(self):
        tr = Trace()
        for i in range(6):
            tr.record(0, "pread", "/f", 3, i * 5000, 1000, float(i), 0.1)
        tr.record(0, "open", "/f", 3, 0, 0, 0.0, 0.0)  # ignored
        det = detect_patterns(tr)
        assert det.stream(0, "/f").classification == "strided"
        assert det.stream(0, "/f").n_ops == 6


class TestFadviseMitigation:
    def test_fadvise_validates_advice(self):
        w = World(nranks=1)
        iosys = IoSystem(
            w.engine, MachineConfig.testbox(), ntasks=1, rng=RngStreams(0)
        )

        def fn(ctx):
            px = iosys.posix_for(0)
            fd = yield from px.open("/f", O_CREAT | O_RDWR)
            with pytest.raises(ValueError):
                yield from px.fadvise(fd, "bogus")
            yield from px.fadvise(fd, "random")
            yield from px.fadvise(fd, "sequential")
            return True

        assert w.run(fn) == [True]

    def test_fadvise_prevents_madbench_bug(self):
        """The future-work loop closed: the pattern hint makes the buggy
        client behave -- no server patch needed."""
        machine = MachineConfig.franklin(
            dirty_quota=2 * MiB, noise_sigma=0.0, tail_prob=0.0
        )
        base = dict(
            ntasks=8,
            n_matrices=8,
            matrix_bytes=8 * MiB - 1000,
            stripe_count=4,
            machine=machine,
        )
        buggy = run_madbench(MadbenchConfig(**base))
        assert buggy.meta["degraded_reads"] > 0

        # same machine, but the application advises its access pattern
        from repro.apps.mpiio import MpiFile

        cfg = MadbenchConfig(**base)

        def advised_rank(ctx, cfg=cfg):
            from repro.apps.madbench import _madbench_rank

            # pre-open to place the hint, then run the standard kernel
            f = yield from MpiFile.open(ctx, cfg.path, stripe_count=cfg.stripe_count)
            yield from ctx.io.fadvise(f.fd, "noreuse")
            yield from f.close()
            yield from _madbench_rank(ctx, cfg)
            return None

        from repro.apps.harness import SimJob

        job = SimJob(cfg.machine, cfg.ntasks, seed=0)
        advised = job.run(advised_rank)
        degraded = advised.trace.reads().degraded_flags.sum()
        assert degraded == 0
        assert advised.elapsed < buggy.elapsed


class TestSlowOstLocalisation:
    def synthetic_trace(self, layout, slow_ost, n_events=400, seed=0):
        """Small transfers spread over the file; events touching the slow
        OST take 5x longer."""
        rng = np.random.default_rng(seed)
        tr = Trace()
        size = layout.stripe_size // 2
        for i in range(n_events):
            stripe = int(rng.integers(0, 64))
            offset = stripe * layout.stripe_size + layout.stripe_size // 4
            touched = layout.bytes_per_ost(offset, size)
            slow = 5.0 if slow_ost in touched else 1.0
            tr.record(
                i % 16, "pwrite", "/f", 3, offset, size,
                float(i), slow * float(rng.normal(1.0, 0.05)),
            )
        return tr

    def test_finds_injected_slow_ost(self):
        layout = StripeLayout(stripe_size=MiB, stripe_count=8, n_osts=8)
        tr = self.synthetic_trace(layout, slow_ost=5)
        suspects = find_slow_osts(tr, layout, threshold=2.0)
        assert suspects[0].ost == 5
        assert suspects[0].is_suspect
        assert not any(s.is_suspect for s in suspects[1:])

    def test_healthy_pool_has_no_suspects(self):
        layout = StripeLayout(stripe_size=MiB, stripe_count=8, n_osts=8)
        tr = self.synthetic_trace(layout, slow_ost=-1)
        suspects = find_slow_osts(tr, layout, threshold=2.0)
        assert suspects and not any(s.is_suspect for s in suspects)

    def test_ost_ensembles_grouping(self):
        layout = StripeLayout(stripe_size=MiB, stripe_count=4, n_osts=4)
        tr = Trace()
        for i in range(12):
            tr.record(0, "pwrite", "/f", 3, (i % 4) * MiB, MiB // 2,
                      float(i), 1.0)
        groups = ost_ensembles(tr, layout)
        assert set(groups) == {0, 1, 2, 3}
        assert all(d.n == 3 for d in groups.values())

    def test_empty_trace(self):
        layout = StripeLayout(stripe_size=MiB, stripe_count=4, n_osts=4)
        assert find_slow_osts(Trace(), layout) == []

    def test_end_to_end_with_injected_fault(self):
        """Full pipeline: simulate a job on a machine with a sick OST,
        then localise it from the trace + layout alone."""
        machine = MachineConfig.testbox(
            dirty_quota=0.0, ost_slowdown={2: 6.0}, tasks_per_node=2,
            discipline_weights={2: 1.0},
        )
        w = World(nranks=8)
        iosys = IoSystem(w.engine, machine, ntasks=8, rng=RngStreams(1))
        iosys.set_stripe_count("/f", 4)

        def fn(ctx):
            px = iosys.posix_for(ctx.rank)
            fd = yield from px.open("/f", O_CREAT | O_RDWR)
            for i in range(16):
                offset = ((ctx.rank * 16 + i) * MiB) // 2
                yield from px.pwrite(fd, MiB // 2, offset)
            yield from px.close(fd)
            return None

        from repro.ipm.interceptor import IpmCollector, IpmIo

        collector = IpmCollector()
        w.set_extras_factory(
            lambda rank: {"io": IpmIo.wrap(iosys.posix_for(rank), collector)}
        )

        def traced(ctx):
            fd = yield from ctx.io.open("/f", O_CREAT | O_RDWR)
            for i in range(16):
                offset = ((ctx.rank * 16 + i) * MiB) // 2
                yield from ctx.io.pwrite(fd, MiB // 2, offset)
            yield from ctx.io.close(fd)
            return None

        w.run(traced)
        layout = iosys.lookup("/f").layout
        suspects = find_slow_osts(collector.trace, layout, threshold=2.0)
        assert suspects[0].ost == 2 and suspects[0].is_suspect
