"""Tests for the ASCII plot renderers."""

import numpy as np
import pytest

from repro.ensembles.histogram import linear_histogram, log_histogram
from repro.ensembles.plots import (
    plot_cdfs,
    plot_curve,
    plot_histogram,
    plot_rate_curve,
)
from repro.ensembles.progress import ProgressCurve, phase_progress
from repro.ensembles.timeseries import aggregate_rate
from repro.ipm.events import Trace


class TestPlotHistogram:
    def test_renders_bars_and_axis(self):
        h = linear_histogram(np.random.default_rng(0).normal(10, 1, 300),
                             bins=40)
        text = plot_histogram(h, title="T", height=6)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 1 + 6 + 2  # title + rows + axis + legend
        assert "#" in text

    def test_peak_column_full_height(self):
        h = linear_histogram([1.0] * 50 + [5.0], bins=10, range_=(0, 10))
        text = plot_histogram(h, height=5)
        rows = text.splitlines()[:5]
        # the dominant bin reaches the top row
        assert "#" in rows[0]

    def test_log_counts_compress_dynamic_range(self):
        data = [1.0] * 1000 + [5.0] * 2
        h = linear_histogram(data, bins=10, range_=(0, 10))
        lin = plot_histogram(h, height=10)
        log = plot_histogram(h, height=10, log_counts=True)
        # on the linear plot the rare mode is invisible above row 10
        count_lin = sum(row.count("#") for row in lin.splitlines())
        count_log = sum(row.count("#") for row in log.splitlines())
        assert count_log > count_lin

    def test_empty_histogram(self):
        h = log_histogram([])
        assert "(empty histogram)" in plot_histogram(h)

    def test_resamples_many_bins(self):
        h = linear_histogram(
            np.random.default_rng(1).random(1000), bins=500
        )
        text = plot_histogram(h, width=50)
        assert max(len(r) for r in text.splitlines()) <= 60


class TestPlotCurve:
    def test_renders_scatter(self):
        x = np.linspace(0, 10, 100)
        text = plot_curve(x, np.sin(x) + 1.5, title="wave", height=8)
        assert "*" in text
        assert "wave" in text

    def test_rate_curve_wrapper(self):
        tr = Trace()
        tr.record(0, "write", "/f", 3, 0, 10 * 1024**2, 0.0, 5.0)
        curve = aggregate_rate(tr, n_bins=20)
        text = plot_rate_curve(curve, title="rate")
        assert "MB/s" in text

    def test_empty_and_degenerate(self):
        assert "(no data)" in plot_curve([], [])
        assert "(degenerate data)" in plot_curve([1.0], [0.0])


class TestPlotCdfs:
    def make_curves(self, n=3):
        tr = Trace()
        for r in range(8):
            for p in range(n):
                tr.record(r, "read", "/f", 3, 0, 100, p * 50.0,
                          1.0 * (p + 1) + 0.1 * r, phase=f"p{p}")
        return list(phase_progress(tr).values())

    def test_overlays_with_legend(self):
        text = plot_cdfs(self.make_curves(3), title="cdfs", height=6)
        assert "o=p0" in text and "x=p1" in text and "+=p2" in text
        assert text.splitlines()[0] == "cdfs"

    def test_slower_curve_stays_lower(self):
        curves = self.make_curves(2)
        text = plot_cdfs(curves, width=40, height=10)
        rows = text.splitlines()[2:-2]
        # at mid-plot, the fast curve ('o') has reached a higher row than
        # the slow one ('x'): find each glyph's highest row at column 20
        col = 20
        first_o = next(i for i, r in enumerate(rows) if r[col:col+1] == "o" or "o" in r)
        first_x = next(i for i, r in enumerate(rows) if "x" in r)
        assert first_o <= first_x

    def test_empty(self):
        assert "(no curves)" in plot_cdfs([])
