"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.ensembles.distribution import EmpiricalDistribution
from repro.ensembles.order_stats import expected_max
from repro.ensembles.segmentation import segment_by_generation, strip_labels
from repro.ensembles.timeseries import aggregate_rate
from repro.ipm.events import Trace
from repro.ipm.profile import StreamingHistogram
from repro.sim.engine import Engine
from repro.sim.resources import SharedPipe, SlotChannel

MiB = 1024 * 1024

events_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),  # rank
        st.sampled_from(["read", "write", "pread", "pwrite", "open"]),
        st.integers(min_value=0, max_value=10**9),  # offset
        st.integers(min_value=0, max_value=10 * MiB),  # size
        st.floats(min_value=0.0, max_value=1000.0),  # t_start
        st.floats(min_value=1e-6, max_value=100.0),  # duration
    ),
    min_size=1,
    max_size=60,
)


def build_trace(events):
    tr = Trace()
    for rank, op, offset, size, t, dur in events:
        tr.record(rank, op, "/f", 3, offset, size, t, dur)
    return tr


class TestTraceInvariants:
    @settings(max_examples=80, deadline=None)
    @given(events_strategy)
    def test_filters_partition_data_ops(self, events):
        tr = build_trace(events)
        assert len(tr.reads()) + len(tr.writes()) == len(tr.data_ops())

    @settings(max_examples=80, deadline=None)
    @given(events_strategy)
    def test_per_rank_totals_sum_to_total(self, events):
        tr = build_trace(events)
        totals = tr.per_rank_totals(8)
        assert totals.sum() == pytest.approx(tr.durations.sum())

    @settings(max_examples=50, deadline=None)
    @given(events_strategy)
    def test_rate_curve_conserves_bytes(self, events):
        tr = build_trace(events)
        data = tr.data_ops()
        assume(len(data) > 0)
        curve = aggregate_rate(tr, n_bins=97)
        assert curve.total_bytes == pytest.approx(
            float(data.sizes.sum()), rel=1e-6, abs=1e-3
        )

    @settings(max_examples=50, deadline=None)
    @given(events_strategy)
    def test_generation_segmentation_conserves_events(self, events):
        tr = build_trace(events)
        seg = segment_by_generation(tr)
        assert len(seg) == len(tr)
        assert np.array_equal(seg.durations, tr.durations)
        # every data op got a generation label; non-data ops none
        for i in range(len(tr)):
            labelled = seg._phase[i] != ""
            is_data = tr._op[i] in ("read", "write", "pread", "pwrite")
            assert labelled == is_data

    @settings(max_examples=50, deadline=None)
    @given(events_strategy)
    def test_strip_labels_idempotent(self, events):
        tr = build_trace(events)
        a = strip_labels(tr)
        b = strip_labels(a)
        assert list(a.phases) == list(b.phases)
        assert np.array_equal(a.starts, b.starts)


class TestChannelConservation:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=10**7),
            min_size=1,
            max_size=20,
        ),
        st.integers(min_value=1, max_value=4),
    )
    def test_slot_channel_serves_all_bytes(self, sizes, slots):
        eng = Engine()
        ch = SlotChannel(eng, bandwidth=1e6, slots=slots)
        events = [ch.transfer(float(s)) for s in sizes]
        eng.run()
        assert all(ev.ok for ev in events)
        assert ch.bytes_transferred == float(sum(sizes))
        assert ch.queue_depth == 0

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=1e6),
            min_size=1,
            max_size=12,
        )
    )
    def test_shared_pipe_completion_bound(self, sizes):
        """No transfer finishes before its exclusive-use lower bound, and
        the pipe drains completely."""
        eng = Engine()
        pipe = SharedPipe(eng, capacity=100.0)
        finish = {}
        for i, s in enumerate(sizes):
            pipe.transfer(s).add_callback(
                lambda ev, i=i: finish.__setitem__(i, eng.now)
            )
        eng.run()
        assert pipe.n_active == 0
        assert len(finish) == len(sizes)
        for i, s in enumerate(sizes):
            assert finish[i] >= s / 100.0 - 1e-9
        # work conservation: total time >= total bytes / capacity
        assert max(finish.values()) >= sum(sizes) / 100.0 - 1e-6


class TestStatInvariants:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=1e4),
            min_size=2,
            max_size=80,
        ),
        st.integers(min_value=1, max_value=64),
    )
    def test_expected_max_monotone_in_n(self, samples, n):
        d = EmpiricalDistribution(samples)
        assert expected_max(d, n + 1) >= expected_max(d, n) - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=1e-5, max_value=1e3),
            min_size=1,
            max_size=100,
        )
    )
    def test_streaming_quantiles_ordered(self, values):
        h = StreamingHistogram()
        for v in values:
            h.observe(v)
        qs = [h.quantile(q) for q in (0.1, 0.5, 0.9)]
        assert qs[0] <= qs[1] <= qs[2]

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=100.0),
            min_size=4,
            max_size=60,
        )
    )
    def test_bootstrap_ci_brackets_point_estimate(self, values):
        d = EmpiricalDistribution(values)
        lo, hi = d.bootstrap_ci(np.mean, n_boot=200)
        assert lo <= float(np.mean(values)) + 1e-9
        assert hi >= float(np.mean(values)) - 1e-9
