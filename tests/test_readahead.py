"""Unit tests for the read-ahead engine and the strided-detection bug."""

import pytest

from repro.iosys.machine import MachineConfig, MiB
from repro.iosys.readahead import ReadAheadEngine


def engine(**over):
    params = dict(
        strided_readahead=True,
        stride_detect_count=3,
        pressure_threshold=0.6,
        readahead_base_window=2 * MiB,
        readahead_max_window=64 * MiB,
    )
    params.update(over)
    return ReadAheadEngine(MachineConfig.testbox(**params))


STRIDE = 10 * MiB
SIZE = 8 * MiB  # leaves a 2 MiB gap -> strided pattern


def strided_reads(ra, n, pressure, task=0, file_id=0, start=0):
    plans = []
    for i in range(n):
        plans.append(
            ra.observe(task, file_id, start + i * STRIDE, SIZE, pressure)
        )
    return plans


class TestStrideDetection:
    def test_detected_on_configured_count(self):
        ra = engine()
        plans = strided_reads(ra, 6, pressure=0.0)
        # strides observed between reads: detection at the 4th read
        assert [p.strided for p in plans] == [False, False, False, True, True, True]
        assert ra.detections == 1

    def test_window_ramps_and_caps(self):
        ra = engine()
        plans = strided_reads(ra, 10, pressure=0.0)
        windows = [p.window for p in plans if p.strided]
        assert windows[0] == 4 * MiB
        assert windows[1] == 8 * MiB
        assert all(b >= a for a, b in zip(windows, windows[1:]))
        assert windows[-1] == 64 * MiB  # capped

    def test_no_degradation_without_pressure(self):
        ra = engine()
        plans = strided_reads(ra, 8, pressure=0.3)
        assert not any(p.degraded for p in plans)

    def test_degrades_under_pressure(self):
        ra = engine()
        plans = strided_reads(ra, 8, pressure=0.9)
        degraded = [p for p in plans if p.degraded]
        assert len(degraded) == 5  # reads 4..8
        severities = [p.severity for p in degraded]
        assert all(b >= a for a, b in zip(severities, severities[1:]))
        assert severities[-1] == pytest.approx(1.0)

    def test_patched_client_never_degrades(self):
        ra = engine(strided_readahead=False)
        plans = strided_reads(ra, 8, pressure=1.0)
        assert not any(p.strided or p.degraded for p in plans)
        assert ra.detections == 0

    def test_sequential_stream_resets_state(self):
        ra = engine()
        strided_reads(ra, 5, pressure=1.0)
        # now read contiguously: stream state resets
        st = ra.stream_state(0, 0)
        ra.observe(0, 0, st.last_end, SIZE, 1.0)
        assert not ra.stream_state(0, 0).detected

    def test_backward_jump_resets_state(self):
        ra = engine()
        strided_reads(ra, 5, pressure=1.0)
        plan = ra.observe(0, 0, 0, SIZE, 1.0)  # seek back to start
        assert not plan.degraded
        # re-detection takes stride_detect_count strides again
        plans = strided_reads(ra, 4, pressure=1.0, start=STRIDE)
        assert [p.strided for p in plans] == [False, False, True, True]

    def test_stride_change_restarts_counting(self):
        ra = engine()
        ra.observe(0, 0, 0, SIZE, 1.0)
        ra.observe(0, 0, STRIDE, SIZE, 1.0)
        ra.observe(0, 0, 2 * STRIDE, SIZE, 1.0)
        # different stride: candidate resets
        plan = ra.observe(0, 0, 2 * STRIDE + 7 * MiB + SIZE, SIZE, 1.0)
        assert not plan.strided

    def test_streams_are_per_task_and_file(self):
        ra = engine()
        strided_reads(ra, 6, pressure=1.0, task=0, file_id=0)
        # another task on the same file starts fresh
        plans = strided_reads(ra, 3, pressure=1.0, task=1, file_id=0)
        assert not any(p.strided for p in plans)
        # same task, another file starts fresh too
        plans = strided_reads(ra, 3, pressure=1.0, task=0, file_id=1)
        assert not any(p.strided for p in plans)

    def test_degraded_counter(self):
        ra = engine()
        strided_reads(ra, 8, pressure=1.0)
        assert ra.degraded_reads == 5


class TestMadbenchShape:
    """The exact access pattern of the MADbench phases."""

    def test_middle_phase_interleaved_writes_do_not_break_detection(self):
        ra = engine()
        # reads observe only the read stream; writes go elsewhere and are
        # not fed to observe() -- the stride between reads stays constant
        plans = strided_reads(ra, 8, pressure=1.0)
        assert sum(p.degraded for p in plans) == 5

    def test_final_phase_clean_when_pressure_gone(self):
        ra = engine()
        strided_reads(ra, 8, pressure=1.0)  # middle phase
        # final phase re-reads from the start, pressure has drained
        plans = strided_reads(ra, 8, pressure=0.0)
        assert not any(p.degraded for p in plans)
        # but the pattern is still recognised as strided eventually
        assert any(p.strided for p in plans)
