"""Unit and integration tests for replicated object placement and
client-side OST failover (the tentpole acceptance criteria live here:
a stalled primary is steered around via the mirror, strictly faster
than riding the stall out in place, and the failover meta-events let
the ensemble analysis name the sick device after the fact).
"""

from __future__ import annotations

import pytest

from repro.apps.harness import SimJob
from repro.cli import build_parser, main as cli_main
from repro.ensembles.diagnose import diagnose
from repro.ensembles.locate import find_masked_faults
from repro.experiments import ALL_EXPERIMENTS
from repro.iosys.faults import STALL, FaultSchedule, FaultWindow
from repro.iosys.machine import MachineConfig, MiB
from repro.iosys.posix import O_CREAT, O_RDWR, IoSystem
from repro.iosys.replication import ReplicatedLayout
from repro.iosys.striping import StripeLayout

NOSTS = 8
RECORD = 1 * MiB


def _layout(start=0, n_osts=NOSTS, stripes=4):
    return StripeLayout(
        stripe_size=1 * MiB,
        stripe_count=stripes,
        n_osts=n_osts,
        start_ost=start,
    )


# -- ReplicatedLayout ----------------------------------------------------------

def test_layout_validates_replica_count():
    base = _layout()
    for bad in (0, -1, NOSTS + 1):
        with pytest.raises(ValueError):
            ReplicatedLayout(base, bad)
    assert ReplicatedLayout(base, 1).replica_count == 1
    assert ReplicatedLayout(base, NOSTS).replica_count == NOSTS


def test_replica_zero_is_the_primary():
    rep = ReplicatedLayout(_layout(start=3), 2)
    assert rep.replica(0) is rep.base
    assert rep.start_ost == 3


def test_replica_shift_spreads_copies():
    rep = ReplicatedLayout(_layout(start=0), 2)
    # 8 OSTs / 2 copies -> the mirror starts half the pool away
    assert rep.replica_shift == 4
    assert rep.replica(1).start_ost == 4
    for stripe in range(16):
        a, b = rep.replica_osts(stripe)
        assert a != b


def test_bytes_per_ost_is_the_union_footprint():
    rep = ReplicatedLayout(_layout(start=0), 2)
    single = rep.base.bytes_per_ost(0, RECORD)
    union = rep.bytes_per_ost(0, RECORD)
    assert set(single) < set(union)
    assert len(union) == 2 * len(single)
    assert sum(union.values()) == 2 * sum(single.values())


def test_extents_land_on_the_replica_device():
    rep = ReplicatedLayout(_layout(start=1), 3)
    for r in range(3):
        for e in rep.extents(2 * MiB, RECORD, r):
            assert e.ost == rep.ost_of_stripe(2, r)


# -- MachineConfig knobs -------------------------------------------------------

def test_machine_validates_replica_count():
    with pytest.raises(ValueError):
        MachineConfig.testbox(n_osts=4).with_overrides(replica_count=5)
    with pytest.raises(ValueError):
        MachineConfig.testbox(n_osts=4).with_overrides(replica_count=0)
    m = MachineConfig.testbox(n_osts=4).with_overrides(replica_count=4)
    assert m.replica_count == 4


def test_machine_validates_failover_costs():
    with pytest.raises(ValueError):
        MachineConfig.testbox().with_overrides(failover_latency=-1.0)
    with pytest.raises(ValueError):
        MachineConfig.testbox().with_overrides(degraded_read_cost=-0.1)
    with pytest.raises(ValueError):
        MachineConfig.testbox().with_overrides(failover_probe_interval=0.0)


# -- IoSystem plumbing ---------------------------------------------------------

def _iosys(replica_count=2):
    from repro.sim.engine import Engine
    from repro.sim.rng import RngStreams

    machine = MachineConfig.testbox(n_osts=NOSTS).with_overrides(
        replica_count=replica_count
    )
    return IoSystem(Engine(), machine, ntasks=2, rng=RngStreams(0))


def test_files_inherit_the_machine_replica_count():
    iosys = _iosys(replica_count=2)
    posix = iosys.posix_for(0)
    gen = posix.open("/scratch/a", O_CREAT | O_RDWR)
    for _ in gen:
        pass
    f = iosys.lookup("/scratch/a")
    assert f.replication is not None
    assert f.replication.replica_count == 2
    assert f.replication.base is f.layout


def test_set_replica_count_overrides_per_path():
    iosys = _iosys(replica_count=1)
    iosys.set_replica_count("/scratch/b", 3)
    posix = iosys.posix_for(0)
    gen = posix.open("/scratch/b", O_CREAT | O_RDWR)
    for _ in gen:
        pass
    assert iosys.lookup("/scratch/b").replication.replica_count == 3


def test_set_replica_count_rejects_bad_values():
    iosys = _iosys()
    with pytest.raises(ValueError):
        iosys.set_replica_count("/scratch/c", NOSTS + 1)
    with pytest.raises(ValueError):
        iosys.set_replica_count("/scratch/c", 0)


# -- end-to-end failover behaviour ---------------------------------------------

def _worker(ctx, nrec, base):
    path = f"{base}.{ctx.rank:04d}"
    ctx.iosys.set_stripe_count(path, 4)
    fd = yield from ctx.io.open(path, O_CREAT | O_RDWR)
    ctx.io.region("write")
    for j in range(nrec):
        yield from ctx.io.pwrite(fd, RECORD, j * RECORD)
    yield from ctx.comm.barrier()
    ctx.io.region("read")
    for j in range(nrec):
        yield from ctx.io.pread(fd, RECORD, j * RECORD)
    yield from ctx.io.close(fd)
    return None


def _run(k, failover=True, window=(0.0, 8.0), device=0, nrec=8, seed=5):
    machine = MachineConfig.testbox(
        n_osts=NOSTS,
        fs_bw=1024 * MiB,
        fs_read_bw=1024 * MiB,
        default_stripe_count=4,
        discipline_weights={2: 1.0},
    ).with_overrides(
        faults=FaultSchedule.of(
            FaultWindow(STALL, window[0], window[1], device=device)
        ),
        client_retry=True,
        retry_base_timeout=0.05,
        retry_max_timeout=0.8,
        replica_count=k,
        client_failover=failover,
        failover_probe_interval=0.5,
    )
    job = SimJob(machine, 2, seed=seed, placement="packed")
    return job.run(_worker, nrec, "/scratch/ft")


def test_failover_steers_and_beats_ride_out():
    steered = _run(2, failover=True)
    rode_out = _run(2, failover=False)
    assert steered.meta["failovers"] > 0
    assert rode_out.meta["failovers"] == 0
    # the whole point: steering to the mirror is strictly faster than
    # waiting out the same stall against the primary
    assert steered.elapsed < rode_out.elapsed


def test_degraded_reads_are_counted_and_charged():
    res = _run(2, failover=True)
    assert res.iosys.osts.degraded_reads > 0


def test_skipped_write_copies_are_marked_stale():
    res = _run(2, failover=True)
    payload = 2 * 8 * RECORD
    stale = float(res.iosys.osts.stale_bytes)
    assert res.iosys.osts.stale_marks > 0
    assert res.iosys.total_bytes_written() + stale == 2 * payload


def test_unreplicated_run_never_steers():
    res = _run(1, failover=True)
    assert res.meta["failovers"] == 0
    assert len(res.trace.filter(ops=["failover"])) == 0


def test_trace_carries_failover_meta_events():
    res = _run(2, failover=True)
    events = res.trace.filter(ops=["failover"])
    assert len(events) > 0
    # size counts the copies bypassed; the averted stall rides in duration
    assert (events.sizes >= 1).all()
    assert float(events.durations.max()) > 0


# -- masked-fault analysis -----------------------------------------------------

def test_masked_fault_names_the_sick_device():
    res = _run(2, failover=True, device=1)
    # file-per-task: attribute each file's events through its own layout
    votes = {}
    for path, f in res.iosys._files.items():
        for m in find_masked_faults(res.trace.filter(path=path), f.layout):
            votes[m.ost] = votes.get(m.ost, 0) + m.n_events
    assert votes
    assert max(votes, key=votes.get) == 1


def test_diagnose_reports_failover_masked_fault():
    res = _run(2, failover=True, device=1)
    path, f = next(
        (p, f)
        for p, f in sorted(res.iosys._files.items())
        if 1 in f.layout.bytes_per_ost(0, 4 * RECORD)
    )
    findings = [
        f2
        for f2 in diagnose(res.trace.filter(path=path), nranks=2,
                           layout=f.layout)
        if f2.code == "failover-masked-fault"
    ]
    assert findings
    assert findings[0].evidence["device"] == 1
    assert findings[0].severity > 0


def test_masked_fault_with_every_ost_holding_a_copy():
    """replica_count == n_osts: every device holds a copy of every
    stripe, so the union footprint is the whole pool.  The analysis must
    survive the degenerate geometry (no device is distinguishable by
    placement) without crashing, and failover still masks the stall."""
    res = _run(NOSTS, failover=True, device=1)
    assert res.meta["failovers"] > 0
    votes = {}
    for path, f in res.iosys._files.items():
        sub = res.trace.filter(path=path)
        for m in find_masked_faults(sub, f.replication or f.layout):
            votes[m.ost] = votes.get(m.ost, 0) + m.n_events
    # attribution through the union footprint spreads over the pool;
    # the sick device must at least be among the accused
    assert 1 in votes
    findings = diagnose(res.trace, nranks=2)
    assert isinstance(findings, list)  # window-only diagnosis, no crash


def test_stall_window_after_last_io_yields_no_finding():
    """A stall window that opens after the job's final I/O never hits a
    request: no retries, no failovers, no masked-fault finding -- and
    none of the analyses crash on the eventless window."""
    res = _run(2, failover=True, window=(500.0, 600.0), device=1)
    assert res.meta["retries"] == 0
    assert res.meta["failovers"] == 0
    assert len(res.trace.filter(ops=["failover"])) == 0
    for path, f in res.iosys._files.items():
        assert find_masked_faults(res.trace.filter(path=path), f.layout) == []
    path, f = next(iter(sorted(res.iosys._files.items())))
    findings = [
        f2
        for f2 in diagnose(res.trace, nranks=2, layout=f.layout)
        if f2.code == "failover-masked-fault"
    ]
    assert findings == []


# -- CLI -----------------------------------------------------------------------

def test_cli_parses_replicate():
    args = build_parser().parse_args(
        ["run-ior", "--machine", "testbox", "--replicate", "2"]
    )
    assert args.replicate == 2


@pytest.mark.parametrize("bad", ["0", "99"])
def test_cli_rejects_bad_replicate_count(bad):
    with pytest.raises(SystemExit, match="bad --replicate count"):
        cli_main(
            ["run-ior", "--machine", "testbox", "--ntasks", "2",
             "--block", "2", "--transfer", "1", "--reps", "1",
             "--replicate", bad]
        )


def test_cli_replicate_combines_with_fault_and_retry():
    rc = cli_main(
        ["run-ior", "--machine", "testbox", "--ntasks", "2",
         "--block", "2", "--transfer", "1", "--reps", "1", "--stripes", "2",
         "--replicate", "2", "--fault", "stall:1:0.05:0.3", "--retry"]
    )
    assert rc == 0


def test_failover_experiment_is_registered():
    assert "failover" in ALL_EXPERIMENTS
    assert hasattr(ALL_EXPERIMENTS["failover"], "run")
