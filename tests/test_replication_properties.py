"""Hypothesis property tests for the replication subsystem.

Two families:

- *placement invariants*: whatever striped layout and replica count
  Hypothesis draws, every stripe's copies land on pairwise-distinct
  devices and no replica ever shares its primary's OST;
- *simulation invariants*: on small seeded mirrored workloads with
  arbitrary stall windows, every payload byte is read back exactly once,
  every copy of every byte is either written or marked stale (nothing is
  silently dropped), and simulated event times never decrease.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.harness import SimJob
from repro.iosys.faults import STALL, FaultSchedule, FaultWindow
from repro.iosys.machine import MachineConfig, KiB, MiB
from repro.iosys.posix import O_CREAT, O_RDWR
from repro.iosys.replication import ReplicatedLayout
from repro.iosys.striping import StripeLayout

N_OSTS = 8


# -- placement invariants ------------------------------------------------------

@st.composite
def replicated_layouts(draw):
    n_osts = draw(st.integers(2, 64))
    stripe_count = draw(st.integers(1, n_osts))
    start = draw(st.integers(0, n_osts - 1))
    base = StripeLayout(
        stripe_size=draw(st.sampled_from([64 * KiB, 1 * MiB, 4 * MiB])),
        stripe_count=stripe_count,
        n_osts=n_osts,
        start_ost=start,
    )
    k = draw(st.integers(1, n_osts))
    return ReplicatedLayout(base, k)


@given(replicated_layouts(), st.integers(0, 4095))
def test_copies_on_pairwise_distinct_devices(rep, stripe):
    devices = rep.replica_osts(stripe)
    assert len(devices) == rep.replica_count
    assert len(set(devices)) == rep.replica_count
    # copy 0 *is* the primary; no other copy may share its device
    assert devices[0] == rep.base.ost_of_stripe(stripe)
    assert all(d != devices[0] for d in devices[1:])
    assert all(0 <= d < rep.base.n_osts for d in devices)


@given(replicated_layouts(), st.integers(0, 4095))
def test_replica_extents_mirror_the_primary(rep, stripe):
    """Each copy holds the same byte range, shifted to its own device."""
    offset = stripe * rep.stripe_size
    for r in range(rep.replica_count):
        extents = rep.extents(offset, rep.stripe_size, r)
        assert sum(e.length for e in extents) == rep.stripe_size
        assert all(e.ost == rep.ost_of_stripe(stripe, r) for e in extents)


# -- simulation invariants -----------------------------------------------------

RECORD = 256 * 1024
NREC = 10
NTASKS = 4


def _worker(ctx, base):
    path = f"{base}.{ctx.rank:04d}"
    ctx.iosys.set_stripe_count(path, 4)
    fd = yield from ctx.io.open(path, O_CREAT | O_RDWR)
    ctx.io.region("write")
    for j in range(NREC):
        yield from ctx.io.pwrite(fd, RECORD, j * RECORD)
    yield from ctx.comm.barrier()
    ctx.io.region("read")
    for j in range(NREC):
        yield from ctx.io.pread(fd, RECORD, j * RECORD)
    yield from ctx.io.close(fd)
    return None


def _simulate(k, failover, stall_t0, stall_span, device, seed):
    sched = FaultSchedule.of(
        FaultWindow(STALL, stall_t0, stall_t0 + stall_span, device=device)
    )
    machine = MachineConfig.testbox(
        n_osts=N_OSTS,
        fs_bw=1024 * MiB,
        fs_read_bw=1024 * MiB,
        default_stripe_count=4,
        discipline_weights={2: 1.0},
    ).with_overrides(
        faults=sched,
        client_retry=True,
        replica_count=k,
        client_failover=failover,
        # small timeouts keep the worst case fast under Hypothesis
        retry_base_timeout=0.05,
        retry_max_timeout=0.8,
        rpc_resend_interval=2.0,
        failover_probe_interval=0.5,
    )
    job = SimJob(machine, NTASKS, seed=seed, placement="packed")
    return job.run(_worker, "/scratch/repprop")


@given(
    k=st.integers(1, 3),
    failover=st.booleans(),
    stall_t0=st.floats(0.0, 1.0, allow_nan=False),
    stall_span=st.floats(0.05, 1.0, allow_nan=False),
    device=st.integers(0, N_OSTS - 1),
    seed=st.integers(0, 1000),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_mirrored_bytes_conserved_and_time_monotone(
    k, failover, stall_t0, stall_span, device, seed
):
    res = _simulate(k, failover, stall_t0, stall_span, device, seed)
    payload = NTASKS * NREC * RECORD
    # the application observes each payload byte exactly once per phase,
    # however the copies were steered
    assert res.total_bytes == 2 * payload
    assert res.iosys.total_bytes_read() == payload
    # every copy of every byte is accounted for: written to its device or
    # marked stale when the client steered around a dead copy
    written = res.iosys.total_bytes_written()
    stale = float(res.iosys.osts.stale_bytes)
    assert written + stale == k * payload
    if not failover:
        # riding out stalls writes every copy eventually
        assert stale == 0
    trace = res.trace
    assert (trace.durations >= 0).all()
    assert (trace.starts >= 0).all()
    # failover meta-events carry the *averted* stall as their duration --
    # a counterfactual that may outlive the (shortened) run -- so the
    # wall-clock bound applies to everything else
    wall = trace.filter(
        ops=[op for op in set(trace.ops) if op != "failover"]
    )
    assert float(wall.ends.max()) <= res.elapsed + 1e-9
    # per-rank event streams are recorded in non-decreasing start order
    for rank in range(NTASKS):
        sub = trace.filter(ranks=[rank])
        assert (np.diff(sub.starts) >= -1e-12).all()
    # failover meta-events appear iff the clients steered, and only the
    # failover-enabled replicated configurations ever steer
    n_events = len(trace.filter(ops=["failover"]))
    if res.meta["failovers"] > 0:
        assert k > 1 and failover
        assert n_events > 0
    else:
        assert n_events == 0
