"""The paper's central claim, tested directly at reduced scale:

"although the I/O rate an individual task observes may vary significantly
from run to run, the statistical moments and modes of the performance
distribution are reproducible."

Two runs of the same experiment with different seeds must have different
event-level details but statistically indistinguishable ensembles; and a
run on a *different* configuration (the patched client, an aligned
layout) must be statistically distinguishable -- the methodology has to
both accept true repeats and reject changed systems.
"""

import numpy as np
import pytest

from repro.apps.ior import IorConfig, run_ior
from repro.apps.madbench import MadbenchConfig, run_madbench
from repro.ensembles.compare import compare_ensembles
from repro.ensembles.distribution import EmpiricalDistribution
from repro.iosys.machine import MachineConfig, MiB


def ior_cfg():
    machine = MachineConfig.franklin()
    return IorConfig(
        ntasks=128,
        block_size=64 * MiB,
        transfer_size=64 * MiB,
        repetitions=4,
        stripe_count=48,
        machine=machine.with_overrides(
            fs_bw=machine.fs_bw / 8,
            fs_read_bw=machine.fs_read_bw / 8,
            dirty_quota=4 * MiB,
        ),
    )


def write_dist(result):
    return EmpiricalDistribution(result.trace.writes().durations)


class TestRunToRunReproducibility:
    @pytest.fixture(scope="class")
    def runs(self):
        cfg = ior_cfg()
        return [run_ior(cfg, seed=s) for s in (10, 11, 12)]

    def test_event_details_differ(self, runs):
        a, b = runs[0], runs[1]
        assert not np.array_equal(
            a.trace.writes().durations, b.trace.writes().durations
        )

    def test_ensembles_agree_pairwise(self, runs):
        dists = [write_dist(r) for r in runs]
        for i in range(len(dists)):
            for j in range(i + 1, len(dists)):
                cmp = compare_ensembles(dists[i], dists[j])
                assert cmp.is_reproducible(), (i, j, cmp)

    def test_moments_within_bootstrap_ci(self, runs):
        a, b = write_dist(runs[0]), write_dist(runs[1])
        lo, hi = a.bootstrap_ci(np.median, n_boot=400)
        assert lo <= b.median <= hi

    def test_wallclock_varies_more_than_the_ensemble(self, runs):
        """The paper's actual framing: run time is an order statistic and
        may swing with a single tail event, while the ensemble median is
        pinned tight -- so the wallclock spread should EXCEED the spread
        of the ensemble medians."""
        times = [r.elapsed for r in runs]
        medians = [write_dist(r).median for r in runs]
        wall_spread = max(times) / min(times)
        median_spread = max(medians) / min(medians)
        assert wall_spread < 2.0  # same experiment, same order of magnitude
        assert median_spread < 1.1  # the ensemble is the stable object
        assert median_spread <= wall_spread


class TestChangedSystemIsDistinguishable:
    def test_madbench_patch_changes_the_read_ensemble(self):
        machine = MachineConfig.franklin(dirty_quota=2 * MiB)
        base = dict(
            ntasks=32,
            n_matrices=8,
            matrix_bytes=16 * MiB - 1000,
            stripe_count=8,
        )
        buggy = run_madbench(
            MadbenchConfig(machine=machine, **base), seed=1
        )
        patched = run_madbench(
            MadbenchConfig(
                machine=machine.with_overrides(strided_readahead=False),
                **base,
            ),
            seed=2,
        )
        cmp = compare_ensembles(
            EmpiricalDistribution(buggy.trace.reads().durations),
            EmpiricalDistribution(patched.trace.reads().durations),
        )
        assert not cmp.is_reproducible()

    def test_ior_different_fs_bandwidth_distinguishable(self):
        cfg_a = ior_cfg()
        cfg_b = ior_cfg()
        cfg_b.machine = cfg_b.machine.with_overrides(
            fs_bw=cfg_b.machine.fs_bw / 2
        )
        a = run_ior(cfg_a, seed=1)
        b = run_ior(cfg_b, seed=1)
        cmp = compare_ensembles(write_dist(a), write_dist(b))
        assert not cmp.is_reproducible()


class TestInterferenceShiftsButPreservesStructure:
    """Background load from other jobs (the paper's first-listed source of
    variability) rescales the fair share, so the modes MOVE -- but the
    harmonic T/k *structure* persists, because it comes from service
    order, not from the absolute rate."""

    def test_harmonic_structure_survives_interference(self):
        from repro.ensembles.modes import detect_modes, harmonics

        def run(load):
            cfg = ior_cfg()
            cfg.machine = cfg.machine.with_overrides(background_load=load)
            result = run_ior(cfg, seed=3)
            dist = write_dist(result)
            modes = detect_modes(dist, bandwidth=0.15)
            return dist, harmonics(modes)

        clean_dist, clean_h = run(())
        loaded_dist, loaded_h = run(((0.0, 1e9, 0.3),))
        # both runs show the harmonic signature
        assert clean_h is not None and clean_h.is_harmonic
        assert loaded_h is not None and loaded_h.is_harmonic
        # but the fundamental has shifted by ~1/0.7
        ratio = loaded_h.fundamental / clean_h.fundamental
        assert 1.2 < ratio < 1.7
        # and the two runs are NOT the same ensemble
        cmp = compare_ensembles(clean_dist, loaded_dist)
        assert not cmp.is_reproducible()
