"""Self-tests for the ``reprolint`` rule book.

Every rule gets three kinds of case: a *positive* (the hazard fires), a
*negative* (the deterministic idiom stays clean), and a *suppression*
(the escape hatch works, but only with a reason).  The linter guards the
simulator's byte-identity claims, so its own behaviour is pinned just as
tightly as the engine's.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import LintConfig, lint_paths, lint_source
from repro.analysis.lint import main
from repro.analysis.rules import RULES


def run(source: str, path: str = "src/repro/x.py", **kwargs):
    return lint_source(textwrap.dedent(source), path=path, **kwargs)


def codes(violations):
    return [v.rule for v in violations]


# -- rule book sanity ----------------------------------------------------------

def test_rule_book_is_complete():
    assert set(RULES) == {"D001", "D002", "D003", "D004", "D005", "E001"}
    for r in RULES.values():
        assert r.summary and r.rationale


# -- D001: no wall clock -------------------------------------------------------

def test_d001_time_module_call():
    v = run("import time\nstart = time.time()\n")
    assert codes(v) == ["D001"]
    assert v[0].line == 2


def test_d001_from_import_and_call():
    v = run("from time import perf_counter\nx = perf_counter()\n")
    assert codes(v) == ["D001", "D001"]  # the binding and the call


def test_d001_datetime_now():
    v = run("import datetime\nstamp = datetime.datetime.now()\n")
    assert codes(v) == ["D001"]


def test_d001_negative_engine_now():
    assert run("def f(engine):\n    return engine.now\n") == []


def test_d001_allowed_in_benchmarks():
    v = run(
        "import time\nt0 = time.perf_counter()\n",
        path="benchmarks/bench_engine.py",
    )
    assert v == []


def test_d001_suppression_with_reason():
    v = run(
        "import time\n"
        "t0 = time.time()  # reprolint: disable=D001 (measures host, not sim)\n"
    )
    assert v == []


# -- D002: no ambient RNG ------------------------------------------------------

def test_d002_stdlib_random_import():
    assert codes(run("import random\n")) == ["D002"]


def test_d002_stdlib_uuid_from_import():
    assert codes(run("from uuid import uuid4\n")) == ["D002"]


def test_d002_numpy_global_state():
    v = run("import numpy as np\nx = np.random.rand(4)\n")
    assert codes(v) == ["D002"]


def test_d002_unseeded_default_rng():
    v = run("import numpy as np\ng = np.random.default_rng()\n")
    assert codes(v) == ["D002"]


def test_d002_negative_seeded_generator():
    src = """
    import numpy as np
    g = np.random.default_rng(42)
    x = g.normal(size=3)
    """
    assert run(src) == []


def test_d002_allowed_in_rng_home():
    v = run("import random\n", path="src/repro/sim/rng.py")
    assert v == []


def test_d002_suppression_with_reason():
    v = run(
        "import random  # reprolint: disable=D002 (doc example, never run)\n"
    )
    assert v == []


# -- D003: no unordered iteration ---------------------------------------------

def test_d003_for_over_set_call():
    v = run("def f(xs):\n    for x in set(xs):\n        print(x)\n")
    assert codes(v) == ["D003"]


def test_d003_tainted_name():
    src = """
    def f(xs):
        devs = set(xs)
        for d in devs:
            print(d)
    """
    assert codes(run(src)) == ["D003"]


def test_d003_list_of_set():
    assert codes(run("def f(xs):\n    return list(set(xs))\n")) == ["D003"]


def test_d003_join_of_set():
    src = """
    def f(xs):
        names = set(xs)
        return ",".join(names)
    """
    assert codes(run(src)) == ["D003"]


def test_d003_set_algebra_of_tainted_names():
    src = """
    def f(xs, ys):
        a = set(xs)
        b = set(ys)
        for x in a | b:
            print(x)
    """
    assert codes(run(src)) == ["D003"]


def test_d003_dict_comprehension():
    src = """
    def f(xs):
        return {x: 0 for x in set(xs)}
    """
    assert codes(run(src)) == ["D003"]


def test_d003_negative_sorted():
    src = """
    def f(xs):
        for x in sorted(set(xs)):
            print(x)
        return sorted({1, 2})
    """
    assert run(src) == []


def test_d003_negative_order_free_consumers():
    src = """
    def f(xs):
        s = set(xs)
        return len(s), min(s), max(s), sum(s), 3 in s
    """
    assert run(src) == []


def test_d003_negative_rebound_name_clears_taint():
    src = """
    def f(xs):
        devs = set(xs)
        devs = sorted(devs)
        for d in devs:
            print(d)
    """
    assert run(src) == []


def test_d003_suppression_with_reason():
    src = """
    def f(xs):
        for x in set(xs):  # reprolint: disable=D003 (commutative sum)
            print(x)
    """
    assert run(src) == []


# -- D004: no float == on simulated times -------------------------------------

def test_d004_eq_on_time_name():
    v = run("def f(now, other):\n    return now == other\n")
    assert codes(v) == ["D004"]


def test_d004_noteq_on_time_suffix():
    v = run("def f(stall_t, x):\n    return stall_t != x\n")
    assert codes(v) == ["D004"]


def test_d004_attribute_time():
    v = run("def f(engine, x):\n    return engine.now == x\n")
    assert codes(v) == ["D004"]


def test_d004_negative_ordering_comparisons():
    src = """
    def f(now, deadline):
        return now < deadline or now >= deadline
    """
    assert run(src) == []


def test_d004_negative_non_time_names():
    assert run("def f(count, n):\n    return count == n\n") == []


def test_d004_negative_string_constant():
    assert run("def f(timeout):\n    return timeout == 'none'\n") == []


def test_d004_suppression_comment_only_line():
    src = """
    def f(now, cached):
        # reprolint: disable=D004 (cache key is exact by construction)
        return now == cached
    """
    assert run(src) == []


# -- D005: no frozen mutation --------------------------------------------------

FROZEN_SRC = """
from dataclasses import dataclass

@dataclass(frozen=True)
class Evidence:
    score: float
"""


def test_d005_mutation_of_annotated_param():
    src = FROZEN_SRC + """
def fudge(ev: Evidence):
    ev.score = 1.0
"""
    assert codes(run(src)) == ["D005"]


def test_d005_object_setattr_outside_class():
    src = FROZEN_SRC + """
def fudge(ev: Evidence):
    object.__setattr__(ev, "score", 1.0)
"""
    assert codes(run(src)) == ["D005"]


def test_d005_cross_file_frozen_type(tmp_path):
    (tmp_path / "defs.py").write_text(FROZEN_SRC)
    (tmp_path / "use.py").write_text(
        "def fudge(ev: 'Evidence'):\n    ev.score = 2.0\n"
    )
    v = lint_paths([str(tmp_path)])
    assert codes(v) == ["D005"]
    assert v[0].path.endswith("use.py")


def test_d005_negative_post_init_setattr():
    src = FROZEN_SRC.replace(
        "    score: float",
        "    score: float\n"
        "    def __post_init__(self):\n"
        "        object.__setattr__(self, 'score', max(self.score, 0.0))",
    )
    assert run(src) == []


def test_d005_negative_mutable_class():
    src = """
    class Tally:
        def __init__(self):
            self.count = 0

    def bump(t: Tally):
        t.count += 1
    """
    assert run(src) == []


def test_d005_suppression_with_reason():
    src = FROZEN_SRC + """
def fudge(ev: Evidence):
    ev.score = 1.0  # reprolint: disable=D005 (test fixture, copies first)
"""
    assert run(src) == []


# -- E001: suppressions must carry a reason -----------------------------------

def test_e001_bare_disable_is_flagged_and_does_not_suppress():
    v = run("import random  # reprolint: disable=D002\n")
    assert sorted(codes(v)) == ["D002", "E001"]


def test_e001_empty_reason_is_flagged():
    v = run("import random  # reprolint: disable=D002 ()\n")
    assert sorted(codes(v)) == ["D002", "E001"]


def test_multiple_codes_one_disable():
    src = (
        "import time, random"
        "  # reprolint: disable=D001,D002 (fixture exercising both)\n"
    )
    assert run(src) == []


def test_suppression_only_covers_named_rule():
    v = run("import random  # reprolint: disable=D001 (wrong rule named)\n")
    assert codes(v) == ["D002"]


# -- violation formatting and CLI ---------------------------------------------

def test_violation_format_is_clickable():
    v = run("import random\n", path="src/repro/bad.py")
    assert v[0].format().startswith("src/repro/bad.py:1:0: D002 ")


def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("def f(engine):\n    return engine.now\n")
    assert main([str(tmp_path)]) == 0
    assert "1 files clean" in capsys.readouterr().err


def test_cli_dirty_tree_exits_one(tmp_path, capsys):
    (tmp_path / "bad.py").write_text("import random\n")
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr()
    assert "D002" in out.out


def test_cli_json_format(tmp_path, capsys):
    (tmp_path / "bad.py").write_text("import random\n")
    assert main(["--format", "json", str(tmp_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "D002"
    assert payload[0]["line"] == 1


def test_cli_rules_listing(capsys):
    assert main(["--rules", "unused"]) == 0
    out = capsys.readouterr().out
    for code in ("D001", "D002", "D003", "D004", "D005", "E001"):
        assert code in out


# -- the package itself must be clean -----------------------------------------

def test_repo_source_tree_is_lint_clean():
    """The acceptance gate: ``python -m repro.analysis.lint src/`` exits 0.

    Run against the installed package directory so the test works from
    any checkout layout."""
    import repro
    from pathlib import Path

    pkg_dir = Path(repro.__file__).parent
    violations = lint_paths([str(pkg_dir)])
    assert violations == [], "\n".join(v.format() for v in violations)
