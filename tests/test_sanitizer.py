"""Runtime sim-race sanitizer tests.

Three layers:

1. kernel semantics -- two same-timestamp exclusive touches of one
   resource are a race, with ``file:line`` provenance of *both*
   schedules; commutative (``exclusive=False``) touches are not;
2. write-after-freeze -- a sealed :class:`TelemetryCollector` turns any
   late ``record_*`` call into a :class:`FrozenTelemetryError` naming
   the freeze site and the write site;
3. the acceptance gate -- every golden scenario re-run with the
   sanitizer forced on stays byte-identical to its committed digest
   with zero races (sanitizing is pure observation).
"""

from __future__ import annotations

import json

import pytest

from repro.iosys.machine import MachineConfig
from repro.iosys.telemetry import FrozenTelemetryError, TelemetryCollector
from repro.sim.engine import Engine, SimRace, SimRaceError

from tests.test_golden_traces import GOLDEN_DIR, SCENARIOS, digest


# -- kernel semantics ----------------------------------------------------------

def _race_pair(sanitize: bool) -> Engine:
    """Two deliberately ambiguous writes: same resource, same instant,
    order decided only by heap insertion sequence."""
    engine = Engine(sanitize=sanitize)

    def proc(env):
        first = env.annotate(env.timeout(1.0), "ost3", op="write")
        second = env.annotate(env.timeout(1.0), "ost3", op="truncate")
        yield env.all_of([first, second])

    engine.process(proc(engine))
    engine.run()
    return engine


def test_same_time_same_resource_is_a_race():
    engine = _race_pair(sanitize=True)
    assert len(engine.races) == 1
    race = engine.races[0]
    assert isinstance(race, SimRace)
    assert race.resource == "ost3"
    assert race.time == pytest.approx(1.0)
    assert {race.first[0], race.second[0]} == {"write", "truncate"}


def test_race_reports_both_schedule_sites():
    engine = _race_pair(sanitize=True)
    (race,) = engine.races
    site_first, site_second = race.first[1], race.second[1]
    # both provenance strings point into THIS file, at the two distinct
    # schedule lines inside _race_pair
    assert "test_sanitizer.py:" in site_first
    assert "test_sanitizer.py:" in site_second
    assert site_first != site_second
    line_first = int(site_first.rsplit(":", 1)[1])
    line_second = int(site_second.rsplit(":", 1)[1])
    assert abs(line_second - line_first) == 1


def test_assert_race_free_raises_with_both_sites():
    engine = _race_pair(sanitize=True)
    with pytest.raises(SimRaceError) as exc:
        engine.assert_race_free()
    message = str(exc.value)
    assert "1 simulation race(s)" in message
    assert "ost3" in message
    assert message.count("test_sanitizer.py:") == 2
    assert exc.value.races == engine.races


def test_sanitize_off_is_the_default_and_a_noop():
    engine = _race_pair(sanitize=False)
    assert engine.sanitize is False
    assert engine.races == []
    engine.assert_race_free()  # does not raise


def test_annotate_off_mode_leaves_event_untagged():
    engine = Engine()
    ev = engine.timeout(1.0)
    assert engine.annotate(ev, "r") is ev
    assert ev._san is None


def test_different_resources_do_not_race():
    engine = Engine(sanitize=True)

    def proc(env):
        a = env.annotate(env.timeout(1.0), "ost0", op="write")
        b = env.annotate(env.timeout(1.0), "ost1", op="write")
        yield env.all_of([a, b])

    engine.process(proc(engine))
    engine.run()
    assert engine.races == []


def test_different_times_do_not_race():
    engine = Engine(sanitize=True)

    def proc(env):
        a = env.annotate(env.timeout(1.0), "ost0", op="write")
        b = env.annotate(env.timeout(2.0), "ost0", op="write")
        yield env.all_of([a, b])

    engine.process(proc(engine))
    engine.run()
    assert engine.races == []


def test_commutative_touches_do_not_race():
    """exclusive=False is the audited-commutative escape used by the
    core FIFO resources: same time, same resource, no race."""
    engine = Engine(sanitize=True)

    def proc(env):
        a = env.annotate(
            env.timeout(1.0), "srv", op="complete", exclusive=False
        )
        b = env.annotate(
            env.timeout(1.0), "srv", op="complete", exclusive=False
        )
        yield env.all_of([a, b])

    engine.process(proc(engine))
    engine.run()
    assert engine.races == []


def test_three_way_ambiguity_reports_every_pair():
    engine = Engine(sanitize=True)

    def proc(env):
        evs = [
            env.annotate(env.timeout(1.0), "r", op=f"w{i}") for i in range(3)
        ]
        yield env.all_of(evs)

    engine.process(proc(engine))
    engine.run()
    assert len(engine.races) == 3  # (w0,w1), (w0,w2), (w1,w2)


def test_core_fifo_resources_are_race_free_under_contention():
    """Many same-instant completions on one Server: the commutativity
    annotation keeps the audited FIFO path quiet."""
    from repro.sim.resources import Server

    engine = Engine(sanitize=True)
    server = Server(engine, rate=1024.0, concurrency=4)

    def proc(env):
        yield env.all_of([server.request(256.0) for _ in range(12)])

    engine.process(proc(engine))
    engine.run()
    assert engine.races == []
    engine.assert_race_free()


# -- write-after-freeze --------------------------------------------------------

class _FakeClock:
    now = 0.0


def _collector() -> TelemetryCollector:
    config = MachineConfig.testbox(n_osts=4).with_overrides(telemetry=True)
    return TelemetryCollector(config, _FakeClock())


def test_write_after_freeze_raises_with_both_sites():
    tel = _collector()
    tel.record_write(0, 1024.0)
    tel.freeze()
    with pytest.raises(FrozenTelemetryError) as exc:
        tel.record_write(1, 2048.0)
    err = exc.value
    assert err.hook == "record_write"
    assert "test_sanitizer.py:" in err.freeze_site
    assert "test_sanitizer.py:" in err.write_site
    assert err.freeze_site != err.write_site
    assert "frozen at" in str(err)


def test_freeze_covers_every_record_hook():
    tel = _collector()
    tel.freeze()
    with pytest.raises(FrozenTelemetryError):
        tel.record_read(0, 1.0)
    with pytest.raises(FrozenTelemetryError):
        tel.op_begin([0])
    with pytest.raises(FrozenTelemetryError):
        tel.record_mds(1)
    with pytest.raises(FrozenTelemetryError):
        tel.record_job(1, "j", "w", 0.0, 1.0)


def test_freeze_is_idempotent_and_keeps_export_readable():
    tel = _collector()
    tel.record_write(0, 1024.0)
    tel.freeze()
    first_site = tel._frozen_at
    tel.freeze()
    assert tel._frozen_at == first_site
    timeline = tel.timeline()
    assert timeline.ost["bytes_in"].sum() == 1024.0


def test_live_collector_records_normally():
    tel = _collector()
    tel.record_write(0, 512.0)
    tel.record_read(1, 256.0)
    tl = tel.timeline()
    assert tl.ost["bytes_in"].sum() == 512.0
    assert tl.ost["bytes_out"].sum() == 256.0


def test_harness_freezes_telemetry_under_sanitize():
    """An end-of-run export from a sanitized SimJob seals the collector:
    any straggler hook would raise instead of corrupting the result."""
    result = SCENARIOS_SANITIZED("telemetry_healthy")
    iosys = result.iosys
    assert iosys.engine.sanitize
    assert iosys.telemetry._frozen_at is not None
    with pytest.raises(FrozenTelemetryError):
        iosys.telemetry.record_write(0, 1.0)


# -- the acceptance gate: goldens under the sanitizer --------------------------

def SCENARIOS_SANITIZED(name):
    """Run one golden scenario with sanitize forced on in every engine
    the scenario builds (the builders take no knobs by design: their
    configs are part of the pinned digest)."""
    orig = Engine.__init__

    def forced(self, sanitize=False):
        orig(self, sanitize=True)

    Engine.__init__ = forced
    try:
        return SCENARIOS[name]()
    finally:
        Engine.__init__ = orig


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_byte_identical_with_sanitizer(name):
    golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    result = SCENARIOS_SANITIZED(name)
    engine = result.iosys.engine
    assert engine.sanitize is True
    assert engine.races == [], "\n".join(r.format() for r in engine.races)
    assert digest(result) == golden, (
        f"{name}: sanitizing must be pure observation -- same digest as "
        f"the unsanitized golden"
    )
