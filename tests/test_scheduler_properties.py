"""Property tests for the facility's arrival processes and admission.

Four invariants the multi-tenant layer is built on:

- arrival processes are deterministic functions of their seed, and a
  Poisson sequence is a *stable prefix* (asking for more jobs never
  perturbs the earlier admission times);
- the Poisson gaps actually have the declared rate (mean inter-arrival
  within statistical tolerance of ``1/rate``);
- burst trains never deadlock the facility -- every admitted rank
  finishes no matter how the trains align;
- a facility holding a single zero-arrival job reduces to the solo
  :class:`~repro.apps.harness.SimJob` harness byte-for-byte, client
  trace and server telemetry alike.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.harness import SimJob
from repro.iosys.machine import MachineConfig, MiB
from repro.iosys.posix import O_CREAT, O_SYNC, O_WRONLY
from repro.iosys.scheduler import (
    BurstArrivals,
    Facility,
    PoissonArrivals,
    TenantJob,
    TraceArrivals,
    assign_arrivals,
)

from tests.test_golden_traces import canonical_lines, telemetry_digest


# -- determinism ----------------------------------------------------------------

@given(
    rate=st.floats(min_value=0.05, max_value=50.0,
                   allow_nan=False, allow_infinity=False),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=1, max_value=64),
)
def test_poisson_same_seed_same_sequence(rate, seed, n):
    a = PoissonArrivals(rate, seed=seed).times(n)
    b = PoissonArrivals(rate, seed=seed).times(n)
    assert a == b
    assert all(t >= 0 for t in a)
    assert a == sorted(a)


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=1, max_value=32),
    extra=st.integers(min_value=1, max_value=32),
)
def test_poisson_prefix_stable(seed, n, extra):
    proc = PoissonArrivals(2.0, seed=seed)
    assert proc.times(n) == proc.times(n + extra)[:n]


@given(
    size=st.integers(min_value=1, max_value=8),
    gap=st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
    n=st.integers(min_value=0, max_value=40),
)
def test_burst_train_structure(size, gap, n):
    ts = BurstArrivals(size, gap).times(n)
    assert len(ts) == n
    assert ts == sorted(ts)
    for i, t in enumerate(ts):
        assert t == (i // size) * gap  # whole trains admitted together


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1000.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=16,
    )
)
def test_trace_replay_sorts_and_prefixes(times):
    proc = TraceArrivals(times)
    got = proc.times(len(times))
    assert got == sorted(float(t) for t in times)
    assert proc.times(1) == got[:1]


# -- rate correctness -----------------------------------------------------------

@given(
    rate=st.sampled_from([0.25, 1.0, 4.0, 16.0]),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40)
def test_poisson_mean_gap_matches_rate(rate, seed):
    # mean of n=400 exponential gaps has relative std 1/sqrt(n) = 5%;
    # a 25% band is a five-sigma acceptance region
    n = 400
    ts = np.asarray(PoissonArrivals(rate, seed=seed).times(n))
    gaps = np.diff(np.concatenate([[0.0], ts]))
    assert np.all(gaps >= 0)
    assert abs(gaps.mean() * rate - 1.0) < 0.25


# -- no deadlock under burst admission ------------------------------------------

@settings(max_examples=10, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=4),
    gap=st.floats(min_value=0.0, max_value=2.0,
                  allow_nan=False, allow_infinity=False),
    seed=st.integers(min_value=0, max_value=50),
)
def test_burst_trains_never_deadlock(size, gap, seed):
    jobs = assign_arrivals(
        [
            TenantJob("a", "idle", 1, params={"nops": 2, "pause": 0.05}),
            TenantJob("b", "mds-storm", 2, params={"nfiles": 2}),
            TenantJob("c", "idle", 1, params={"nops": 1, "pause": 0.05}),
            TenantJob("d", "checkpoint", 1, params={"nfiles": 2}),
        ],
        BurstArrivals(size, gap),
    )
    res = Facility(
        MachineConfig.shared_testbox(), jobs, seed=seed
    ).run()  # Facility.run raises on any rank that never finished
    assert len(res.jobs) == 4
    for job, jr in zip(jobs, res.jobs):
        assert jr.t_start == pytest.approx(job.arrival)
        assert jr.t_end >= jr.t_start


# -- single-tenant reduction ----------------------------------------------------

def _solo_checkpoint(ctx, nfiles):
    rec = int(MiB)
    for i in range(nfiles):
        path = f"/scratch/victim/ckpt{ctx.rank}_{i}.dat"
        fd = yield from ctx.io.open(path, O_CREAT | O_WRONLY | O_SYNC)
        ctx.io.region("write")
        yield from ctx.io.pwrite(fd, rec, 0)
        yield from ctx.io.close(fd)
    return nfiles * rec


def test_single_tenant_facility_is_byte_identical_to_simjob():
    machine = MachineConfig.shared_testbox()
    fac = Facility(
        machine,
        [TenantJob("victim", "checkpoint", 4, params={"nfiles": 8})],
        seed=11,
    ).run()
    solo = SimJob(machine, 4, seed=11).run(_solo_checkpoint, 8)

    assert canonical_lines(fac.trace) == canonical_lines(solo.trace)
    assert fac.total_bytes == solo.trace.total_bytes
    assert telemetry_digest(fac.telemetry) == telemetry_digest(solo.telemetry)
    # and the single job stays untagged: no tenant machinery leaks in
    jr = fac.jobs[0]
    assert jr.tenant == 0
    assert fac.telemetry.tenants == {}
    assert fac.telemetry.job_windows == ()
