"""Tests: phase segmentation of unlabelled traces."""

import numpy as np
import pytest

from repro.apps.ior import IorConfig, run_ior
from repro.apps.madbench import MadbenchConfig, run_madbench
from repro.ensembles.diagnose import diagnose
from repro.ensembles.segmentation import (
    segment_by_gaps,
    segment_by_generation,
    strip_labels,
)
from repro.ipm.events import Trace
from repro.iosys.machine import MachineConfig, MiB


def labelled_ior(reps=4):
    cfg = IorConfig(
        ntasks=16,
        block_size=8 * MiB,
        transfer_size=8 * MiB,
        repetitions=reps,
        compute_time=2.0,  # think time between phases: separable timeline
        stripe_count=4,
        machine=MachineConfig.testbox(
            dirty_quota=0.0, mds_latency=1e-4, discipline_weights={2: 1.0}
        ),
    )
    return run_ior(cfg)


class TestStripLabels:
    def test_labels_removed_rest_identical(self):
        res = labelled_ior()
        bare = strip_labels(res.trace)
        assert set(bare.phases) == {""}
        assert np.array_equal(bare.durations, res.trace.durations)
        assert list(bare.ops) == list(res.trace.ops)


class TestGapSegmentation:
    def test_recovers_barrier_phases(self):
        res = labelled_ior(reps=4)
        bare = strip_labels(res.trace)
        seg = segment_by_gaps(bare)
        writes = seg.writes()
        phases = writes.phase_names()
        assert len(phases) == 4
        # each recovered phase contains exactly one write per rank
        for p in phases:
            sub = writes.filter(phase=p)
            assert len(sub) == 16
            assert len(set(sub.ranks.tolist())) == 16

    def test_matches_true_labels(self):
        res = labelled_ior(reps=3)
        seg = segment_by_gaps(strip_labels(res.trace))
        # build the mapping recovered-phase -> set of true labels
        truth = res.trace.writes()
        recovered = seg.writes()
        for p in recovered.phase_names():
            idx = [i for i, ph in enumerate(recovered._phase) if ph == p]
            true_labels = {truth._phase[i] for i in idx}
            assert len(true_labels) == 1  # no phase mixing

    def test_explicit_min_gap(self):
        tr = Trace()
        for rank in range(4):
            tr.record(rank, "write", "/f", 3, 0, 100, 0.0, 1.0)
            tr.record(rank, "write", "/f", 3, 0, 100, 10.0, 1.0)
        seg = segment_by_gaps(tr, min_gap=5.0)
        assert len(seg.phase_names()) == 2
        seg1 = segment_by_gaps(tr, min_gap=50.0)
        assert len(seg1.phase_names()) == 1

    def test_empty_trace(self):
        assert len(segment_by_gaps(Trace())) == 0


class TestGenerationSegmentation:
    def test_per_rank_counters(self):
        tr = Trace()
        for rank in range(3):
            for i in range(4):
                tr.record(rank, "write", "/f", 3, 0, 10, float(i), 0.5)
        seg = segment_by_generation(tr)
        for g in range(1, 5):
            sub = seg.filter(phase=f"genW{g}")
            assert len(sub) == 3

    def test_reads_and_writes_counted_separately(self):
        tr = Trace()
        tr.record(0, "write", "/f", 3, 0, 10, 0.0, 0.1)
        tr.record(0, "read", "/f", 3, 0, 10, 1.0, 0.1)
        tr.record(0, "write", "/f", 3, 0, 10, 2.0, 0.1)
        seg = segment_by_generation(tr)
        assert list(seg.phases) == ["genW1", "genR1", "genW2"]

    def test_metadata_ops_unlabelled(self):
        tr = Trace()
        tr.record(0, "open", "/f", 3, 0, 0, 0.0, 0.1)
        tr.record(0, "write", "/f", 3, 0, 10, 1.0, 0.1)
        seg = segment_by_generation(tr)
        assert list(seg.phases) == ["", "genW1"]


class TestEndToEndUnlabelled:
    def test_madbench_deterioration_found_without_labels(self):
        """The full point: a raw (label-free) capture of the buggy
        MADbench run still yields the Figure 5a diagnosis after automatic
        generation segmentation."""
        machine = MachineConfig.franklin(
            dirty_quota=MiB, noise_sigma=0.0, tail_prob=0.0
        )
        cfg = MadbenchConfig(
            ntasks=16, n_matrices=8, matrix_bytes=8 * MiB - 1000,
            stripe_count=4, machine=machine,
        )
        res = run_madbench(cfg)
        bare = strip_labels(res.trace)
        seg = segment_by_generation(bare)
        findings = diagnose(seg, nranks=cfg.ntasks)
        assert "progressive-deterioration" in {f.code for f in findings}
