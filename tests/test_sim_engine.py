"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import (
    AllOf,
    Engine,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)


class TestEvent:
    def test_succeed_delivers_value(self, engine):
        ev = engine.event()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        ev.succeed(42)
        engine.run()
        assert seen == [42]

    def test_double_trigger_rejected(self, engine):
        ev = engine.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_value_before_trigger_raises(self, engine):
        ev = engine.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_fail_reraises_in_value(self, engine):
        ev = engine.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            _ = ev.value

    def test_callback_after_dispatch_runs_immediately(self, engine):
        ev = engine.event()
        ev.succeed("x")
        engine.run()
        late = []
        ev.add_callback(lambda e: late.append(e.value))
        assert late == ["x"]


class TestTimeout:
    def test_advances_clock(self, engine):
        times = []

        def proc():
            yield engine.timeout(1.5)
            times.append(engine.now)
            yield engine.timeout(2.5)
            times.append(engine.now)

        engine.process(proc())
        engine.run()
        assert times == [1.5, 4.0]

    def test_zero_delay_allowed(self, engine):
        def proc():
            yield engine.timeout(0.0)
            return engine.now

        p = engine.process(proc())
        engine.run()
        assert p.value == 0.0

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.timeout(-1.0)

    def test_timeout_carries_value(self, engine):
        def proc():
            got = yield engine.timeout(1.0, value="hello")
            return got

        p = engine.process(proc())
        engine.run()
        assert p.value == "hello"


class TestProcess:
    def test_return_value(self, engine):
        def proc():
            yield engine.timeout(1)
            return "done"

        p = engine.process(proc())
        engine.run()
        assert p.value == "done"
        assert p.triggered and p.ok

    def test_child_process_waitable(self, engine):
        def child():
            yield engine.timeout(2)
            return 7

        def parent():
            result = yield engine.process(child())
            return result + 1

        p = engine.process(parent())
        engine.run()
        assert p.value == 8
        assert engine.now == 2

    def test_exception_propagates_to_parent(self, engine):
        def child():
            yield engine.timeout(1)
            raise ValueError("child died")

        def parent():
            try:
                yield engine.process(child())
            except ValueError as exc:
                return f"caught {exc}"

        p = engine.process(parent())
        engine.run()
        assert p.value == "caught child died"

    def test_unhandled_exception_crashes_run(self, engine):
        def proc():
            yield engine.timeout(1)
            raise RuntimeError("unhandled")

        engine.process(proc())
        with pytest.raises(RuntimeError, match="unhandled"):
            engine.run()

    def test_yield_non_event_rejected(self, engine):
        def proc():
            yield 42

        engine.process(proc())
        with pytest.raises(SimulationError, match="non-event"):
            engine.run()

    def test_interrupt_wakes_waiting_process(self, engine):
        log = []

        def sleeper():
            try:
                yield engine.timeout(100)
            except Interrupt as intr:
                log.append((engine.now, intr.cause))
            return "interrupted"

        p = engine.process(sleeper())

        def interrupter():
            yield engine.timeout(3)
            p.interrupt(cause="wakeup")

        engine.process(interrupter())
        engine.run()
        assert log == [(3, "wakeup")]
        assert p.value == "interrupted"

    def test_interrupt_finished_process_is_noop(self, engine):
        def quick():
            yield engine.timeout(1)
            return 1

        p = engine.process(quick())
        engine.run()
        p.interrupt()  # should not raise
        assert p.value == 1


class TestAllOf:
    def test_waits_for_all(self, engine):
        def proc():
            evs = [engine.timeout(3, value="a"), engine.timeout(1, value="b")]
            values = yield engine.all_of(evs)
            return (engine.now, values)

        p = engine.process(proc())
        engine.run()
        assert p.value == (3, ["a", "b"])

    def test_empty_succeeds_immediately(self, engine):
        def proc():
            values = yield engine.all_of([])
            return values

        p = engine.process(proc())
        engine.run()
        assert p.value == []

    def test_failure_propagates(self, engine):
        bad = engine.event()

        def proc():
            yield engine.all_of([engine.timeout(1), bad])

        p = engine.process(proc())

        def failer():
            yield engine.timeout(0.5)
            bad.fail(ValueError("nope"))

        def watcher():
            try:
                yield p
            except ValueError:
                return "saw failure"

        w = engine.process(watcher())
        engine.process(failer())
        engine.run()
        assert w.value == "saw failure"


class TestEngineLoop:
    def test_time_never_goes_backwards(self, engine):
        stamps = []

        def proc(delay):
            yield engine.timeout(delay)
            stamps.append(engine.now)

        for d in (5, 1, 3, 2, 4):
            engine.process(proc(d))
        engine.run()
        assert stamps == sorted(stamps)

    def test_fifo_tie_break_at_same_time(self, engine):
        order = []

        def proc(tag):
            yield engine.timeout(1.0)
            order.append(tag)

        for tag in range(6):
            engine.process(proc(tag))
        engine.run()
        assert order == list(range(6))

    def test_run_until_stops_early(self, engine):
        def proc():
            yield engine.timeout(10)
            return "late"

        p = engine.process(proc())
        stopped_at = engine.run(until=5.0)
        assert stopped_at == 5.0
        assert not p.triggered
        engine.run()
        assert p.value == "late"

    def test_deterministic_event_count(self):
        def scenario():
            eng = Engine()

            def proc():
                for _ in range(10):
                    yield eng.timeout(0.1)

            for _ in range(5):
                eng.process(proc())
            eng.run()
            return eng.event_count, eng.now

        assert scenario() == scenario()
