"""Unit tests for shared-resource primitives."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.resources import (
    FifoQueueMixin,
    Lock,
    Semaphore,
    Server,
    SharedPipe,
    SlotChannel,
)


def completions(engine, events):
    """Collect (finish_time, value) for each event."""
    out = [None] * len(events)
    for i, ev in enumerate(events):
        ev.add_callback(lambda e, i=i: out.__setitem__(i, engine.now))
    engine.run()
    return out


class TestSlotChannel:
    def test_exclusive_service_harmonics(self, engine):
        ch = SlotChannel(engine, bandwidth=64.0, slots=1)
        evs = [ch.transfer(128.0) for _ in range(4)]
        assert completions(engine, evs) == [2.0, 4.0, 6.0, 8.0]

    def test_two_slots_pairwise(self, engine):
        ch = SlotChannel(engine, bandwidth=64.0, slots=2)
        evs = [ch.transfer(128.0) for _ in range(4)]
        assert completions(engine, evs) == [4.0, 4.0, 8.0, 8.0]

    def test_fair_share_all_finish_together(self, engine):
        ch = SlotChannel(engine, bandwidth=64.0, slots=4)
        evs = [ch.transfer(128.0) for _ in range(4)]
        assert completions(engine, evs) == [8.0] * 4

    def test_factor_scales_duration(self, engine):
        ch = SlotChannel(engine, bandwidth=10.0, slots=1)
        ev = ch.transfer(10.0, factor=2.5)
        assert completions(engine, [ev]) == [2.5]

    def test_bytes_conserved(self, engine):
        ch = SlotChannel(engine, bandwidth=100.0, slots=2)
        for n in (10, 20, 30):
            ch.transfer(float(n))
        engine.run()
        assert ch.bytes_transferred == 60.0

    def test_zero_byte_transfer_is_instant(self, engine):
        ch = SlotChannel(engine, bandwidth=5.0, slots=1)
        ev = ch.transfer(0.0)
        assert completions(engine, [ev]) == [0.0]

    def test_queue_depth(self, engine):
        ch = SlotChannel(engine, bandwidth=1.0, slots=1)
        ch.transfer(10.0)
        ch.transfer(10.0)
        assert ch.queue_depth == 2

    def test_set_slots_affects_future_transfers(self, engine):
        ch = SlotChannel(engine, bandwidth=64.0, slots=1)
        ev1 = ch.transfer(64.0)  # 1s at full rate
        engine.run()
        ch.set_slots(2)
        ev2 = ch.transfer(64.0)  # now at half rate
        t = completions(engine, [ev2])
        assert t == [1.0 + 2.0]
        assert ev1.ok

    def test_rejects_bad_args(self, engine):
        with pytest.raises(ValueError):
            SlotChannel(engine, bandwidth=0.0)
        with pytest.raises(ValueError):
            SlotChannel(engine, bandwidth=1.0, slots=0)
        ch = SlotChannel(engine, bandwidth=1.0)
        with pytest.raises(ValueError):
            ch.transfer(-1.0)


class TestSharedPipe:
    def test_single_transfer_full_rate(self, engine):
        pipe = SharedPipe(engine, capacity=10.0)
        ev = pipe.transfer(50.0)
        assert completions(engine, [ev]) == [5.0]

    def test_two_equal_transfers_share(self, engine):
        pipe = SharedPipe(engine, capacity=10.0)
        evs = [pipe.transfer(10.0), pipe.transfer(10.0)]
        assert completions(engine, evs) == [2.0, 2.0]

    def test_late_arrival_resharing(self, engine):
        pipe = SharedPipe(engine, capacity=10.0)
        first = pipe.transfer(20.0)  # alone: would finish at t=2

        def late():
            yield engine.timeout(1.0)
            ev = pipe.transfer(10.0)
            yield ev
            return engine.now

        p = engine.process(late())
        done = completions(engine, [first])
        # first: 10 bytes in [0,1) at rate 10, then 10 bytes at rate 5 -> t=3
        assert done == [pytest.approx(3.0)]
        # late: 10 bytes at rate 5 until t=3 (done); exactly at t=3
        assert p.value == pytest.approx(3.0)

    def test_departure_speeds_up_remaining(self, engine):
        pipe = SharedPipe(engine, capacity=10.0)
        small = pipe.transfer(10.0)
        big = pipe.transfer(30.0)
        times = completions(engine, [small, big])
        # both at rate 5 until small done (t=2); big has 20 left at rate 10
        assert times == [pytest.approx(2.0), pytest.approx(4.0)]

    def test_bytes_conserved(self, engine):
        pipe = SharedPipe(engine, capacity=3.0)
        for n in (1.0, 2.0, 3.0):
            pipe.transfer(n)
        engine.run()
        assert pipe.bytes_transferred == 6.0
        assert pipe.n_active == 0


class TestServer:
    def test_fifo_with_overhead(self, engine):
        srv = Server(engine, rate=10.0, concurrency=1, overhead=0.5)
        evs = [srv.request(10.0), srv.request(10.0)]
        assert completions(engine, evs) == [1.5, 3.0]

    def test_concurrency_shares_rate(self, engine):
        srv = Server(engine, rate=10.0, concurrency=2)
        evs = [srv.request(10.0), srv.request(10.0)]
        # each in-flight request gets rate/2 = 5
        assert completions(engine, evs) == [2.0, 2.0]

    def test_counters(self, engine):
        srv = Server(engine, rate=10.0)
        srv.request(5.0)
        srv.request(15.0)
        engine.run()
        assert srv.requests_served == 2
        assert srv.bytes_served == 20.0
        assert srv.busy_time == pytest.approx(2.0)

    def test_queue_depth_observable(self, engine):
        srv = Server(engine, rate=1.0, concurrency=1)
        for _ in range(5):
            srv.request(10.0)
        assert srv.queue_depth == 5


class TestFifoQueueMixin:
    """Queue-depth accounting is one helper shared by every FIFO resource,
    and it must read correctly *while* requests contend -- the telemetry
    layer samples it mid-service."""

    def test_shared_by_channel_and_server(self):
        assert issubclass(SlotChannel, FifoQueueMixin)
        assert issubclass(Server, FifoQueueMixin)
        # one property object, not two copies that could drift
        assert SlotChannel.queue_depth is FifoQueueMixin.queue_depth
        assert Server.queue_depth is FifoQueueMixin.queue_depth

    def test_depth_counts_pending_plus_in_service(self, engine):
        srv = Server(engine, rate=10.0, concurrency=2)
        evs = [srv.request(10.0) for _ in range(6)]
        # 2 admitted immediately, 4 still queued
        assert srv.queue_depth == 6
        seen = []
        for ev in evs:
            ev.add_callback(lambda e: seen.append((engine.now, srv.queue_depth)))
        engine.run()
        # pairs share the rate and drain at 2 s intervals
        assert [t for t, _ in seen] == [2.0, 2.0, 4.0, 4.0, 6.0, 6.0]
        depths = [d for _, d in seen]
        assert depths == sorted(depths, reverse=True)
        assert depths[0] <= 6
        assert srv.queue_depth == 0

    def test_depth_observable_mid_service(self, engine):
        ch = SlotChannel(engine, bandwidth=1.0, slots=1)
        for _ in range(3):
            ch.transfer(10.0)  # serial: one finishes every 10 s
        samples = {}

        def probe(t):
            yield engine.timeout(t)
            samples[t] = ch.queue_depth

        for t in (5.0, 15.0, 25.0, 35.0):
            engine.process(probe(t))
        engine.run()
        assert samples == {5.0: 3, 15.0: 2, 25.0: 1, 35.0: 0}


class TestLock:
    def test_mutual_exclusion_fifo(self, engine):
        lock = Lock(engine)
        order = []

        def worker(tag, hold):
            yield lock.acquire()
            order.append(("in", tag, engine.now))
            yield engine.timeout(hold)
            lock.release()

        for tag in range(3):
            engine.process(worker(tag, 2.0))
        engine.run()
        assert order == [("in", 0, 0.0), ("in", 1, 2.0), ("in", 2, 4.0)]
        assert lock.acquisitions == 3
        assert lock.contended_acquisitions == 2

    def test_release_unheld_raises(self, engine):
        lock = Lock(engine)
        with pytest.raises(SimulationError):
            lock.release()


class TestSemaphore:
    def test_capacity_limits_concurrency(self, engine):
        sem = Semaphore(engine, capacity=2)
        active = []
        peak = []

        def worker():
            yield sem.acquire()
            active.append(1)
            peak.append(len(active))
            yield engine.timeout(1.0)
            active.pop()
            sem.release()

        for _ in range(5):
            engine.process(worker())
        engine.run()
        assert max(peak) == 2

    def test_release_idle_raises(self, engine):
        sem = Semaphore(engine, capacity=1)
        with pytest.raises(SimulationError):
            sem.release()

    def test_available_accounting(self, engine):
        sem = Semaphore(engine, capacity=3)
        sem.acquire()
        sem.acquire()
        assert sem.available == 1
        sem.release()
        assert sem.available == 2


class TestSharedPipeNumerics:
    """Regression: float residue from repeated resharing must not spin the
    completion timer forever (found by hypothesis)."""

    def test_adversarial_sizes_drain(self):
        import random

        rng = random.Random(0)
        for _ in range(50):
            eng = Engine()
            pipe = SharedPipe(eng, capacity=100.0)
            sizes = [rng.uniform(1.0, 1e6) for _ in range(rng.randint(1, 12))]
            events = [pipe.transfer(s) for s in sizes]
            eng.run(until=1e9)
            assert pipe.n_active == 0
            assert all(ev.ok for ev in events)

    def test_tiny_and_huge_mix(self):
        eng = Engine()
        pipe = SharedPipe(eng, capacity=3.0)
        evs = [pipe.transfer(s) for s in (1e-9, 1e6, 1.0, 1e-9, 999999.5)]
        eng.run(until=1e9)
        assert pipe.n_active == 0
        assert all(ev.ok for ev in evs)
        assert eng.event_count < 100
