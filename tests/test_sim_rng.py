"""Unit tests for deterministic RNG streams."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_draws(self):
        a = RngStreams(7).stream("ost0").random(10)
        b = RngStreams(7).stream("ost0").random(10)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        r = RngStreams(7)
        a = r.stream("node0").random(10)
        b = r.stream("node1").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").random(5)
        b = RngStreams(2).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        r = RngStreams(0)
        assert r.stream("a") is r.stream("a")

    def test_creation_order_does_not_matter(self):
        r1 = RngStreams(5)
        r1.stream("aaa")
        x1 = r1.stream("bbb").random(4)
        r2 = RngStreams(5)
        x2 = r2.stream("bbb").random(4)  # no 'aaa' created first
        assert np.array_equal(x1, x2)

    def test_lognormal_factor_median_near_one(self):
        r = RngStreams(3)
        draws = np.array(
            [r.lognormal_factor("svc", sigma=0.3) for _ in range(4000)]
        )
        assert 0.9 < np.median(draws) < 1.1

    def test_lognormal_factor_capped(self):
        r = RngStreams(3)
        draws = [r.lognormal_factor("svc", sigma=2.0, cap=3.0) for _ in range(2000)]
        assert max(draws) <= 3.0

    def test_lognormal_zero_sigma_is_identity(self):
        assert RngStreams(0).lognormal_factor("x", 0.0) == 1.0

    def test_choice_weighted_respects_weights(self):
        r = RngStreams(11)
        picks = [
            r.choice_weighted("d", ["a", "b"], [0.9, 0.1]) for _ in range(2000)
        ]
        frac_a = picks.count("a") / len(picks)
        assert 0.85 < frac_a < 0.95

    def test_choice_weighted_single_option(self):
        r = RngStreams(0)
        assert r.choice_weighted("d", [42], [1.0]) == 42

    def test_uniform_bounds(self):
        r = RngStreams(9)
        draws = [r.uniform("u", 2.0, 5.0) for _ in range(500)]
        assert all(2.0 <= d <= 5.0 for d in draws)
