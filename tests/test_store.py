"""Run-store core: persistence, ingestion, analytics, golden neutrality.

Four families:

- *store semantics*: put/get/query round-trips, idempotent inserts,
  filters, insertion order;
- *ingestion*: the committed ``benchmarks/results/BENCH_*.json``
  baselines backfill cleanly and idempotently, and live benchmark
  entries flow through the same code path;
- *fleet analytics*: distributions, config-vs-outcome correlations,
  and the regression fence (clean history passes, a synthetically
  slowed run and a digest drift are flagged);
- *golden neutrality*: capturing a run into the store is pure
  observation -- the stored trace digest equals the committed golden
  sha256, and a captured run's digest matches an uncaptured one.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.store import (
    RunRecord,
    RunStore,
    derive_run_id,
    find_regressions,
    fleet_correlations,
    fleet_distributions,
    fleet_report,
    ingest_paths,
    record_from_app_result,
    records_from_bench_entries,
    timing_fence,
)
from tests.test_golden_traces import GOLDEN_DIR, SCENARIOS, digest

RESULTS_DIR = Path(__file__).parent.parent / "benchmarks" / "results"


def _record(name="ior", kind="run", *, wall=None, metric=1.0,
            fingerprint="fp0", trace_digest="", created_at="",
            extra_metrics=None):
    metrics = {"elapsed_s": metric}
    if wall is not None:
        metrics["wall_s"] = float(wall)
    if extra_metrics:
        metrics.update(extra_metrics)
    payload = {
        "kind": kind, "name": name, "fingerprint": fingerprint,
        "metrics": metrics, "trace_digest": trace_digest,
        "created_at": created_at,
    }
    return RunRecord(
        run_id=derive_run_id(payload),
        kind=kind,
        name=name,
        fingerprint=fingerprint,
        trace_digest=trace_digest,
        elapsed=metric,
        wall_time=wall,
        created_at=created_at,
        metrics=metrics,
    )


# -- store semantics -----------------------------------------------------------

def test_put_get_roundtrip(tmp_path):
    record = _record(wall=0.5)
    with RunStore(tmp_path / "s.sqlite") as store:
        assert store.put(record)
        assert store.get(record.run_id) == record


def test_put_is_idempotent(tmp_path):
    record = _record()
    with RunStore(tmp_path / "s.sqlite") as store:
        assert store.put(record)
        assert not store.put(record)
        assert len(store) == 1


def test_reopen_preserves_rows(tmp_path):
    path = tmp_path / "s.sqlite"
    record = _record()
    with RunStore(path) as store:
        store.put(record)
    with RunStore(path, create=False) as store:
        assert store.get(record.run_id) == record


def test_query_filters_and_order(tmp_path):
    a = _record("ior", metric=1.0)
    b = _record("ior", metric=2.0)
    c = _record("gcrm", metric=3.0)
    with RunStore(":memory:") as store:
        for r in (a, b, c):
            store.put(r)
        assert store.query(name="ior") == [a, b]
        assert store.query(name="gcrm") == [c]
        assert store.query(kind="experiment") == []
        assert store.query(limit=1) == [a]
        assert [r.run_id for r in store] == [a.run_id, b.run_id, c.run_id]
        assert store.groups() == [("run", "gcrm", 1), ("run", "ior", 2)]


def test_missing_store_refuses_without_create(tmp_path):
    from repro.store import StoreError

    with pytest.raises(StoreError):
        RunStore(tmp_path / "absent.sqlite", create=False)


# -- ingestion -----------------------------------------------------------------

def test_backfill_committed_baselines(tmp_path):
    with RunStore(":memory:") as store:
        stats = ingest_paths(store, [RESULTS_DIR])
        assert stats.files == len(list(RESULTS_DIR.glob("BENCH_*.json")))
        assert stats.inserted == len(store) > 0
        assert stats.duplicates == 0
        # idempotent: a second pass inserts nothing
        again = ingest_paths(store, [RESULTS_DIR])
        assert again.inserted == 0
        assert again.duplicates == stats.inserted


def test_live_and_backfill_share_one_code_path(tmp_path):
    """conftest's live capture and the file ingester produce identical
    records for identical entries -- they call the same function."""
    path = sorted(RESULTS_DIR.glob("BENCH_*.json"))[0]
    entries = json.loads(path.read_text())
    name = path.stem[len("BENCH_"):]
    live = records_from_bench_entries(name, entries)
    from repro.store import records_from_bench_json

    from_file = records_from_bench_json(path)
    assert [r.run_id for r in live] == [r.run_id for r in from_file]


# -- fleet analytics -----------------------------------------------------------

def test_fleet_distributions_over_backfill():
    with RunStore(":memory:") as store:
        ingest_paths(store, [RESULTS_DIR])
        summaries = fleet_distributions(store.query())
    walls = [s for s in summaries if s.metric == "wall_mean_s"]
    assert walls, "backfilled baselines must yield timing distributions"
    for s in walls:
        assert s.min <= s.q1 <= s.median <= s.q3 <= s.max
        assert s.expected_max >= s.median


def test_correlations_include_config_vs_outcome():
    """cfg_* metrics participate, so a config-vs-outcome correlation
    exists in a fleet whose config varies."""
    records = [
        _record("sweep", fingerprint=f"fp{i}",
                extra_metrics={"cfg_n_osts": float(2 ** i),
                               "effective_bw_MBps": 100.0 * 2 ** i})
        for i in range(4)
    ]
    corr = fleet_correlations(records, min_n=3)
    pairs = {(c.metric_a, c.metric_b): c.r for c in corr}
    assert pairs[("cfg_n_osts", "effective_bw_MBps")] == pytest.approx(1.0)


def test_timing_fence_one_sample_history():
    median, threshold = timing_fence([1.0])
    assert median == 1.0
    assert threshold == pytest.approx(1.35)  # rel-tol floor, not IQR


def test_regressions_clean_history_passes():
    records = [_record("b", wall=1.0 + 0.01 * i, metric=1.0 + 0.01 * i)
               for i in range(5)]
    assert find_regressions(records) == []


def test_regressions_flag_slowed_run():
    history = [_record("b", wall=1.0 + 0.01 * i) for i in range(5)]
    slowed = _record("b", wall=5.0)
    found = find_regressions(history + [slowed])
    assert [r.metric for r in found] == ["wall_s"]
    assert found[0].run_id == slowed.run_id
    assert found[0].value == 5.0
    assert "fence" in found[0].format()


def test_regressions_flag_digest_drift():
    a = _record("b", fingerprint="same", trace_digest="d1", created_at="t1")
    b = _record("b", fingerprint="same", trace_digest="d2", created_at="t2")
    found = find_regressions([a, b])
    assert any(r.metric == "trace_digest" for r in found)
    # identical digests for the same fingerprint: no drift
    c = _record("b", fingerprint="same", trace_digest="d1", created_at="t3")
    assert not any(
        r.metric == "trace_digest" for r in find_regressions([a, c])
    )


def test_fleet_report_prints_distributions_and_correlations():
    with RunStore(":memory:") as store:
        ingest_paths(store, [RESULTS_DIR])
        text = fleet_report(store.query())
    assert "per-metric distributions" in text
    assert "cross-run correlations" in text
    assert "wall_mean_s" in text
    assert fleet_report([]).startswith("run store is empty")


# -- golden neutrality ---------------------------------------------------------

def test_stored_digest_equals_committed_golden():
    """The store's canonical trace digest is byte-compatible with the
    golden harness: capturing a golden scenario stores exactly the
    committed sha256."""
    result = SCENARIOS["slow_ost_stall"]()
    record = record_from_app_result(result, name="slow_ost_stall")
    committed = json.loads(
        (GOLDEN_DIR / "slow_ost_stall.json").read_text()
    )
    assert record.trace_digest == committed["sha256"]
    assert record.n_events == committed["n_events"]
    assert record.total_bytes == committed["total_bytes"]
    with RunStore(":memory:") as store:
        store.put(record)
        assert store.get(record.run_id).trace_digest == committed["sha256"]


def test_capture_is_pure_observation():
    """Recording a run does not perturb it: a captured run and an
    uncaptured rerun of the same scenario digest identically."""
    captured = SCENARIOS["ior_write"]()
    record_from_app_result(captured, name="ior_write")
    assert digest(captured) == digest(SCENARIOS["ior_write"]())
