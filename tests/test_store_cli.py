"""Run-store CLI and wiring: verbs, exit codes, ``--store`` capture.

Covers ``python -m repro.store`` (ingest / report / regressions /
query), the ``repro store`` delegation, ``repro run-* --store``, and
``python -m repro.experiments --save/--store`` -- all in-process via
the ``main(argv)`` entry points, no subprocesses.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as repro_main
from repro.experiments.__main__ import main as experiments_main
from repro.store import RunStore
from repro.store.__main__ import main as store_main

RESULTS = "benchmarks/results"


@pytest.fixture
def db(tmp_path):
    return str(tmp_path / "store.sqlite")


def _ingest(db):
    assert store_main(["ingest", RESULTS, "--db", db, "--no-stamp"]) == 0


# -- python -m repro.store -----------------------------------------------------

def test_ingest_report_regressions_query(db, capsys):
    _ingest(db)
    out = capsys.readouterr().out
    assert "new records" in out

    assert store_main(["report", "--db", db]) == 0
    out = capsys.readouterr().out
    assert "per-metric distributions" in out
    assert "cross-run correlations" in out

    assert store_main(["regressions", "--db", db]) == 0
    assert "no regressions" in capsys.readouterr().out

    assert store_main(["query", "--db", db, "--kind", "benchmark",
                       "--require", "1"]) == 0


def test_query_require_exits_2_when_short(db, capsys):
    _ingest(db)
    capsys.readouterr()
    assert store_main(["query", "--db", db, "--kind", "experiment",
                       "--require", "1"]) == 2


def test_query_json_lines_parse(db, capsys):
    _ingest(db)
    capsys.readouterr()
    assert store_main(["query", "--db", db, "--json", "--limit", "2"]) == 0
    lines = [
        ln for ln in capsys.readouterr().out.splitlines() if ln.strip()
    ]
    assert len(lines) == 2
    for line in lines:
        assert json.loads(line)["schema_version"] == 1


def test_report_on_missing_store_is_an_error(db, capsys):
    assert store_main(["report", "--db", db]) == 2
    assert "repro store:" in capsys.readouterr().err


def test_regressions_exit_1_on_slowed_run(db, capsys):
    """The CI gate: a synthetically slowed rerun of a stored benchmark
    makes ``regressions`` exit non-zero."""
    _ingest(db)
    with RunStore(db) as store:
        base = store.query(kind="benchmark")[0]
        slowed_metrics = dict(base.metrics)
        slowed_metrics["wall_mean_s"] = (
            slowed_metrics.get("wall_mean_s", 1.0) * 10.0
        )
        from dataclasses import replace

        slowed = replace(
            base, run_id="f" * 64, metrics=slowed_metrics,
            wall_time=slowed_metrics["wall_mean_s"],
        )
        store.put(slowed)
    capsys.readouterr()
    assert store_main(["regressions", "--db", db]) == 1
    out = capsys.readouterr().out
    assert "regression(s)" in out
    assert "history fence" in out


# -- repro store / repro run-* --store -----------------------------------------

def test_repro_store_delegates(db, capsys):
    assert repro_main(["store", "ingest", RESULTS, "--db", db,
                       "--no-stamp"]) == 0
    assert "new records" in capsys.readouterr().out


def test_run_ior_store_lands_a_row(db, capsys):
    argv = ["run-ior", "--ntasks", "2", "--block", "2", "--transfer", "2",
            "--reps", "1", "--stripes", "2", "--store", db]
    assert repro_main(argv) == 0
    assert "run stored" in capsys.readouterr().out
    with RunStore(db, create=False) as store:
        records = store.query(kind="run", name="ior")
        assert len(records) == 1
        record = records[0]
        assert record.trace_digest
        assert record.n_events > 0
        assert record.wall_time is not None and record.wall_time >= 0
        assert "cfg_n_osts" in record.metrics
    # rerunning adds a second timing sample to the same group; the sim
    # itself is deterministic, so fingerprint and digest must not drift
    assert repro_main(argv) == 0
    capsys.readouterr()
    with RunStore(db, create=False) as store:
        records = store.query(kind="run", name="ior")
    assert len(records) == 2
    assert records[0].fingerprint == records[1].fingerprint
    assert records[0].trace_digest == records[1].trace_digest


def test_run_facility_store_lands_a_row(db, capsys):
    argv = ["run-facility",
            "--tenants", "vic=checkpoint:2@0",
            "--tenants", "agg=bandwidth-hog:2@0",
            "--store", db]
    assert repro_main(argv) == 0
    with RunStore(db, create=False) as store:
        records = store.query(kind="run", name="facility")
        assert len(records) == 1
        assert records[0].n_events > 0
        assert records[0].config.get("machine")


# -- python -m repro.experiments --save/--store --------------------------------

def test_experiments_save_and_store_single_run(db, tmp_path, capsys):
    out_dir = tmp_path / "exp"
    assert experiments_main(["tiny", "faults", "--save", str(out_dir),
                             "--store", db]) == 0
    text = capsys.readouterr().out
    assert "saved:" in text and "stored:" in text

    path = out_dir / "EXP_faults_tiny.json"
    data = json.loads(path.read_text())
    assert data["experiment"] == "faults"
    assert data["scale"] == "tiny"

    with RunStore(db, create=False) as store:
        records = store.query(kind="experiment", name="faults")
        assert len(records) == 1
        record = records[0]
        assert record.scale == "tiny"
        assert record.metrics["verdicts_held"] == 1.0
        assert record.wall_time is not None

    # the loose file re-ingests as a (distinct-id, same-group) record:
    # one shared payload shape end to end
    assert store_main(["ingest", str(out_dir), "--db", db,
                       "--no-stamp"]) == 0


def test_experiments_unknown_arg_exits_2(capsys):
    assert experiments_main(["no-such-experiment"]) == 2
    assert "unknown argument" in capsys.readouterr().err
