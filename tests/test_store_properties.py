"""Hypothesis properties of the run-store record format.

Two families:

- *round-trip exactness*: whatever finite-float record Hypothesis
  builds, persist -> query -> export reproduces it byte-exactly
  (``to_json`` of the original equals ``to_json`` of the stored copy,
  and ``from_json`` inverts both);
- *schema versioning*: a record or store carrying a different
  ``schema_version`` fails loudly with
  :class:`~repro.store.SchemaMigrationError` (naming the migration
  recipe), never by silently misreading rows.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import (
    SCHEMA_VERSION,
    RunRecord,
    RunStore,
    SchemaMigrationError,
    canonical_json,
    derive_run_id,
)

# -- strategies ----------------------------------------------------------------

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
names = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("C",)),
    min_size=1, max_size=24,
)
metric_keys = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
)
json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(-2**31, 2**31), finite_floats,
    names,
)


@st.composite
def run_records(draw):
    kind = draw(st.sampled_from(("run", "experiment", "benchmark")))
    name = draw(names)
    metrics = draw(
        st.dictionaries(metric_keys, finite_floats, max_size=6)
    )
    config = draw(
        st.dictionaries(metric_keys, json_scalars, max_size=4)
    )
    wall = draw(st.one_of(
        st.none(),
        st.floats(min_value=0.0, allow_nan=False, allow_infinity=False),
    ))
    payload = {"kind": kind, "name": name, "metrics": metrics,
               "config": config}
    return RunRecord(
        run_id=derive_run_id(payload),
        kind=kind,
        name=name,
        scale=draw(st.sampled_from(("", "paper", "small", "tiny"))),
        fingerprint=draw(st.text("0123456789abcdef", min_size=8,
                                 max_size=64)),
        config=config,
        trace_digest=draw(st.text("0123456789abcdef", max_size=64)),
        n_events=draw(st.integers(0, 10**9)),
        total_bytes=draw(st.integers(0, 10**15)),
        elapsed=draw(finite_floats),
        wall_time=wall,
        created_at=draw(st.sampled_from(
            ("", "2026-08-07T00:00:00+00:00")
        )),
        metrics=metrics,
        findings=tuple(draw(st.lists(
            st.dictionaries(metric_keys, json_scalars, max_size=3),
            max_size=3,
        ))),
        verdicts=draw(st.dictionaries(metric_keys, st.booleans(),
                                      max_size=4)),
        telemetry=draw(st.dictionaries(metric_keys, finite_floats,
                                       max_size=4)),
        notes=draw(st.text(max_size=40)),
    )


# -- round-trip exactness ------------------------------------------------------

@given(record=run_records())
@settings(max_examples=60, deadline=None)
def test_persist_query_export_is_byte_exact(record):
    with RunStore(":memory:") as store:
        assert store.put(record)
        stored = store.get(record.run_id)
    assert stored == record
    assert stored.to_json() == record.to_json()
    assert RunRecord.from_json(stored.to_json()) == record


@given(record=run_records())
@settings(max_examples=30, deadline=None)
def test_canonical_json_is_stable_and_sorted(record):
    text = record.to_json()
    assert text == canonical_json(json.loads(text))
    assert "NaN" not in text and "Infinity" not in text


def test_non_finite_values_are_rejected():
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(ValueError, match="finite"):
            RunRecord(run_id="x", kind="run", name="n", fingerprint="f",
                      metrics={"m": bad})


# -- schema versioning ---------------------------------------------------------

@given(version=st.one_of(
    st.none(),
    st.integers(-5, 50).filter(lambda v: v != SCHEMA_VERSION),
))
@settings(max_examples=20, deadline=None)
def test_record_version_mismatch_raises_migration_error(version):
    payload = {"kind": "run", "name": "n"}
    data = RunRecord(
        run_id=derive_run_id(payload), kind="run", name="n",
        fingerprint="f",
    ).to_dict()
    data["schema_version"] = version
    with pytest.raises(SchemaMigrationError, match="re-ingest|re-export"):
        RunRecord.from_dict(data)


def test_store_version_mismatch_refuses_to_open(tmp_path):
    import sqlite3

    path = tmp_path / "old.sqlite"
    with RunStore(path) as store:
        pass
    conn = sqlite3.connect(path)
    conn.execute(
        "UPDATE store_meta SET value = ? WHERE key = 'schema_version'",
        (str(SCHEMA_VERSION + 1),),
    )
    conn.commit()
    conn.close()
    with pytest.raises(SchemaMigrationError, match="re-ingest"):
        RunStore(path, create=False)
