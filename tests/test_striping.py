"""Unit + property tests for stripe layout arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iosys.striping import StripeLayout

MiB = 1024 * 1024


def layout(stripe_count=4, n_osts=8, stripe_size=MiB, start_ost=0):
    return StripeLayout(
        stripe_size=stripe_size,
        stripe_count=stripe_count,
        n_osts=n_osts,
        start_ost=start_ost,
    )


class TestExtents:
    def test_single_stripe_extent(self):
        lo = layout()
        exts = lo.extents(0, 1000)
        assert len(exts) == 1
        assert exts[0].ost == 0 and exts[0].length == 1000

    def test_boundary_crossing_splits(self):
        lo = layout()
        exts = lo.extents(MiB - 100, 200)
        assert [e.length for e in exts] == [100, 100]
        assert [e.stripe_index for e in exts] == [0, 1]
        assert [e.ost for e in exts] == [0, 1]

    def test_round_robin_wraps_at_stripe_count(self):
        lo = layout(stripe_count=4, n_osts=8)
        exts = lo.extents(0, 6 * MiB)
        assert [e.ost for e in exts] == [0, 1, 2, 3, 0, 1]

    def test_start_ost_offsets_mapping(self):
        lo = layout(stripe_count=3, n_osts=8, start_ost=6)
        exts = lo.extents(0, 3 * MiB)
        assert [e.ost for e in exts] == [6, 7, 0]

    def test_zero_length(self):
        assert layout().extents(500, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            layout().extents(-1, 10)
        with pytest.raises(ValueError):
            layout().extents(0, -10)


class TestCounts:
    def test_boundary_crossings(self):
        lo = layout()
        assert lo.boundary_crossings(0, MiB) == 0
        assert lo.boundary_crossings(0, MiB + 1) == 1
        assert lo.boundary_crossings(MiB // 2, MiB) == 1
        assert lo.boundary_crossings(0, 3 * MiB) == 2
        assert lo.boundary_crossings(0, 0) == 0

    def test_partial_stripes_aligned_write(self):
        lo = layout()
        assert lo.partial_stripes(0, 2 * MiB) == 0

    def test_partial_stripes_unaligned_record(self):
        lo = layout()
        # the GCRM case: a 1.6 MB record at an unaligned offset
        n = lo.partial_stripes(int(1.6 * MiB), int(1.6 * MiB))
        assert n == 2

    def test_partial_stripes_interior_full(self):
        lo = layout()
        # half-stripe head, two full stripes, half-stripe tail
        assert lo.partial_stripes(MiB // 2, 3 * MiB) == 2

    def test_is_aligned(self):
        lo = layout()
        assert lo.is_aligned(0, MiB)
        assert lo.is_aligned(3 * MiB, 2 * MiB)
        assert not lo.is_aligned(1, MiB)
        assert not lo.is_aligned(0, MiB - 1)

    def test_rpcs_for(self):
        lo = layout()
        assert lo.rpcs_for(0, MiB) == 0
        assert lo.rpcs_for(1, MiB) == 1
        assert lo.rpcs_for(MiB, MiB) == 1
        assert lo.rpcs_for(MiB + 1, MiB) == 2

    def test_bytes_per_ost_totals(self):
        lo = layout(stripe_count=2, n_osts=4)
        per = lo.bytes_per_ost(0, 5 * MiB)
        assert per == {0: 3 * MiB, 1: 2 * MiB}


class TestValidation:
    def test_stripe_count_bounds(self):
        with pytest.raises(ValueError):
            layout(stripe_count=0)
        with pytest.raises(ValueError):
            layout(stripe_count=9, n_osts=8)

    def test_start_ost_bounds(self):
        with pytest.raises(ValueError):
            layout(start_ost=8, n_osts=8)

    def test_stripe_size_positive(self):
        with pytest.raises(ValueError):
            layout(stripe_size=0)


@settings(max_examples=200, deadline=None)
@given(
    offset=st.integers(min_value=0, max_value=100 * MiB),
    length=st.integers(min_value=0, max_value=32 * MiB),
    stripe_count=st.integers(min_value=1, max_value=8),
    start_ost=st.integers(min_value=0, max_value=7),
)
def test_extents_partition_the_range(offset, length, stripe_count, start_ost):
    """Extents exactly tile [offset, offset+length): contiguous, complete,
    each within one stripe, each mapped to the round-robin OST."""
    lo = StripeLayout(
        stripe_size=MiB, stripe_count=stripe_count, n_osts=8, start_ost=start_ost
    )
    exts = lo.extents(offset, length)
    assert sum(e.length for e in exts) == length
    pos = offset
    for e in exts:
        assert e.offset == pos
        assert e.length > 0
        # within one stripe
        assert e.offset // MiB == (e.end - 1) // MiB
        assert e.stripe_index == e.offset // MiB
        assert e.ost == lo.ost_of_stripe(e.stripe_index)
        pos = e.end
    assert pos == offset + length


@settings(max_examples=200, deadline=None)
@given(
    offset=st.integers(min_value=0, max_value=50 * MiB),
    length=st.integers(min_value=1, max_value=16 * MiB),
)
def test_partial_plus_full_equals_touched(offset, length):
    """partial + full stripes == total stripes touched."""
    lo = layout()
    exts = lo.extents(offset, length)
    touched = len(exts)
    partial = lo.partial_stripes(offset, length)
    full = sum(1 for e in exts if e.length == MiB and e.offset % MiB == 0)
    assert partial + full == touched


@settings(max_examples=100, deadline=None)
@given(
    offset=st.integers(min_value=0, max_value=50 * MiB),
    length=st.integers(min_value=1, max_value=16 * MiB),
)
def test_aligned_extents_have_no_partials(offset, length):
    lo = layout()
    aligned_off = (offset // MiB) * MiB
    aligned_len = ((length + MiB - 1) // MiB) * MiB
    assert lo.partial_stripes(aligned_off, aligned_len) == 0
    assert lo.is_aligned(aligned_off, aligned_len)
