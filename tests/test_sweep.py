"""Sweep runner: sharding, the CLI, and the store-identity acceptance gate.

The headline acceptance criterion lives here:
``test_parallel_sweep_store_identical_to_serial`` runs the experiments
driver serially and with 4 workers and asserts the two RunStores are
row-for-row identical -- the sweep runner may change wall-clock, never
content.
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.store.schema import canonical_json
from repro.sweep import (
    SweepError,
    SweepRunner,
    SweepTask,
    experiment_tasks,
    run_sweep,
    shard_tasks,
)
from repro.sweep.__main__ import main as sweep_main

#: a constant ingest stamp: run_id is a content hash over payload +
#: created_at, so a fixed stamp makes store rows fully deterministic
STAMP = "2026-01-01T00:00:00Z"


# -- sharding ------------------------------------------------------------------

def test_shards_are_contiguous_balanced_and_complete():
    shards = shard_tasks(10, 3)
    assert [list(s) for s in shards] == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]


def test_more_workers_than_tasks_drops_empty_shards():
    shards = shard_tasks(2, 8)
    assert [list(s) for s in shards] == [[0], [1]]


def test_zero_tasks_yield_no_shards():
    assert shard_tasks(0, 4) == []


def test_invalid_worker_count_is_rejected():
    with pytest.raises(SweepError):
        shard_tasks(5, 0)
    with pytest.raises(SweepError):
        SweepRunner([], workers=0)


def test_experiment_tasks_rejects_unknown_names():
    with pytest.raises(SweepError, match="nosuch"):
        experiment_tasks(["fig1", "nosuch"], "tiny")


def test_experiment_tasks_default_is_every_experiment():
    from repro.experiments import ALL_EXPERIMENTS

    tasks = experiment_tasks([], "small")
    assert [t.name for t in tasks] == list(ALL_EXPERIMENTS)
    assert all(t.scale == "small" and t.kind == "experiment" for t in tasks)


# -- callable / ingest task kinds ---------------------------------------------

def _double(x):
    return {"doubled": 2 * x}


def test_callable_tasks_run_and_keep_order():
    tasks = [
        SweepTask(kind="callable", name=f"{__name__}:_double", args={"x": i})
        for i in range(5)
    ]
    results = run_sweep(tasks, workers=2)
    assert [r.index for r in results] == [0, 1, 2, 3, 4]
    assert all(r.ok for r in results)
    assert [r.payload["doubled"] for r in results] == [0, 2, 4, 6, 8]


def test_bad_callable_path_is_a_recorded_failure():
    results = run_sweep(
        [SweepTask(kind="callable", name="not-a-path", args={})], workers=1
    )
    assert results[0].ok is False
    assert "module:function" in results[0].error


def test_ingest_task_backfills_loose_files(tmp_path):
    exp = {
        "experiment": "fig1", "scale": "tiny", "summary": {"x": 1.0},
        "series": {}, "verdicts": {"ok": True}, "notes": [],
        "all_verdicts_hold": True,
    }
    src = tmp_path / "EXP_fig1_tiny.json"
    src.write_text(json.dumps(exp))
    db = tmp_path / "store.sqlite"
    results = run_sweep(
        [SweepTask(kind="ingest", name="backfill", args={"paths": [str(src)]})],
        workers=1, store_path=str(db), created_at=STAMP,
    )
    assert results[0].ok, results[0].error
    assert results[0].payload["inserted"] == 1
    assert _store_rows(db), "ingested record must land in the store"


def test_ingest_without_store_fails_cleanly(tmp_path):
    results = run_sweep(
        [SweepTask(kind="ingest", name="x", args={"paths": []})], workers=1
    )
    assert results[0].ok is False
    assert "--store" in results[0].error


# -- the acceptance gate: serial vs parallel store identity --------------------

_GATE_EXPERIMENTS = ["fig1", "fig2", "fig4", "fig5"]


def _store_rows(db_path):
    """Every record in the store, sorted, minus the ``seq`` autoincrement
    column -- seq reflects physical arrival order, which legitimately
    varies with worker scheduling; record *content* must not."""
    with sqlite3.connect(str(db_path)) as conn:
        rows = conn.execute("SELECT * FROM runs").fetchall()
    return sorted(row[1:] for row in rows)


def _payload_essence(res):
    """Everything about a result that must be worker-count invariant
    (the worker id is diagnostic and legitimately varies).  Payloads are
    compared through the store's canonical JSON -- the same
    serialisation the run_id hash sees -- which also sidesteps numpy
    array equality in experiment series."""
    payload = None if res.payload is None else canonical_json(res.payload)
    return (res.index, res.task, res.ok, payload, res.error)


def test_parallel_sweep_store_identical_to_serial(tmp_path):
    tasks = experiment_tasks(_GATE_EXPERIMENTS, "tiny")

    serial_db = tmp_path / "serial.sqlite"
    serial = SweepRunner(
        tasks, workers=1, store_path=str(serial_db), created_at=STAMP
    ).run()

    parallel_db = tmp_path / "parallel.sqlite"
    parallel = SweepRunner(
        tasks, workers=4, store_path=str(parallel_db), created_at=STAMP
    ).run()

    assert all(r.ok for r in serial), [r.error for r in serial if not r.ok]
    assert all(r.ok for r in parallel), [
        r.error for r in parallel if not r.ok
    ]
    assert [_payload_essence(r) for r in serial] == [
        _payload_essence(r) for r in parallel
    ]
    serial_rows = _store_rows(serial_db)
    assert serial_rows, "serial sweep must have stored records"
    assert serial_rows == _store_rows(parallel_db)


def test_repeat_sweep_into_same_store_is_idempotent(tmp_path):
    tasks = experiment_tasks(["fig1"], "tiny")
    db = tmp_path / "store.sqlite"
    SweepRunner(tasks, workers=1, store_path=str(db), created_at=STAMP).run()
    first = _store_rows(db)
    SweepRunner(tasks, workers=1, store_path=str(db), created_at=STAMP).run()
    assert _store_rows(db) == first


def test_save_dir_writes_canonical_loose_files(tmp_path):
    out = tmp_path / "results"
    results = run_sweep(
        experiment_tasks(["fig1"], "tiny"), workers=1, save_dir=str(out)
    )
    assert results[0].ok, results[0].error
    files = sorted(out.glob("EXP_*_tiny.json"))
    assert len(files) == 1, files
    saved = json.loads(files[0].read_text())
    assert canonical_json(saved) == canonical_json(results[0].payload)


# -- CLI -----------------------------------------------------------------------

def test_cli_runs_and_reports(tmp_path, capsys):
    db = tmp_path / "store.sqlite"
    code = sweep_main(
        ["tiny", "fig1", "fig2", "--workers", "2", "--store", str(db)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "ok   fig1@tiny" in out
    assert "ok   fig2@tiny" in out
    assert "2/2 tasks ok" in out
    assert _store_rows(db)


def test_cli_rejects_unknown_experiment(capsys):
    assert sweep_main(["tiny", "nosuch"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_rejects_bad_worker_count(capsys):
    assert sweep_main(["tiny", "fig1", "--workers", "0"]) == 2


def test_cli_failure_exit_is_nonzero(capsys):
    # a callable task that raises, injected through the runner the CLI
    # uses, must exit non-zero; drive the runner directly to keep the
    # CLI surface (selectors) experiment-only
    results = run_sweep(
        [SweepTask(kind="callable", name=f"{__name__}:_raise", args={})],
        workers=1,
    )
    assert results[0].ok is False
    assert "boom" in results[0].error


def _raise():
    raise RuntimeError("boom")
