"""Hypothesis properties of the sweep runner.

Three guarantees, stated as properties rather than examples:

1. ``shard_tasks`` is a true partition for ANY (n_tasks, workers) --
   contiguous, complete, balanced, order-preserving;
2. shard-count invariance: the ordered results of a sweep are a pure
   function of the task list, never of the worker count;
3. crash isolation: a worker that raises, or dies outright
   (``os._exit``), yields recorded failures for its unreported tasks
   while every other shard's tasks still succeed.

Worker processes cost real milliseconds, so the process-spawning
properties keep ``max_examples`` low; the pure sharding maths runs the
default budget.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sweep import SweepTask, run_sweep, shard_tasks

_HERE = __name__  # workers import helpers back out of this module


# -- helpers run inside worker processes ---------------------------------------

def _square(x):
    return {"squared": x * x}


def _poison(x):
    raise ValueError(f"poisoned task {x}")


def _hard_crash(x):
    # simulate a segfault: no exception, no cleanup, no sentinel
    os._exit(3)


def _square_tasks(xs):
    return [
        SweepTask(kind="callable", name=f"{_HERE}:_square", args={"x": x})
        for x in xs
    ]


# -- 1: sharding is a partition ------------------------------------------------

@given(
    n_tasks=st.integers(min_value=0, max_value=500),
    workers=st.integers(min_value=1, max_value=64),
)
def test_shards_partition_the_index_space(n_tasks, workers):
    shards = shard_tasks(n_tasks, workers)
    flat = [i for shard in shards for i in shard]
    # complete, ordered, no duplicates, no gaps
    assert flat == list(range(n_tasks))
    # never more shards than workers or tasks, none empty
    assert len(shards) <= min(workers, n_tasks) if n_tasks else not shards
    assert all(len(s) > 0 for s in shards)
    # balanced: sizes differ by at most one
    if shards:
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1


@given(
    n_tasks=st.integers(min_value=1, max_value=200),
    workers=st.integers(min_value=1, max_value=32),
)
def test_shard_assignment_is_deterministic(n_tasks, workers):
    """Which worker owns a task is a pure function of (n_tasks, workers)."""
    assert shard_tasks(n_tasks, workers) == shard_tasks(n_tasks, workers)


# -- 2: shard-count invariance -------------------------------------------------

@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    xs=st.lists(
        st.integers(min_value=-100, max_value=100), min_size=1, max_size=8
    ),
    workers=st.integers(min_value=2, max_value=5),
)
def test_results_are_worker_count_invariant(xs, workers):
    """1 worker and N workers produce identical ordered results (modulo
    the diagnostic ``worker`` field)."""
    tasks = _square_tasks(xs)
    serial = run_sweep(tasks, workers=1)
    parallel = run_sweep(tasks, workers=workers)

    def essence(results):
        return [(r.index, r.task, r.ok, r.payload, r.error) for r in results]

    assert essence(serial) == essence(parallel)
    assert [r.payload["squared"] for r in parallel] == [x * x for x in xs]


# -- 3: crash isolation --------------------------------------------------------

@settings(
    max_examples=6, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    prefix=st.lists(
        st.integers(min_value=0, max_value=20), min_size=1, max_size=3
    ),
    suffix=st.lists(
        st.integers(min_value=0, max_value=20), min_size=1, max_size=3
    ),
)
def test_raised_exceptions_do_not_sink_the_shard(prefix, suffix):
    """A task that raises is a recorded failure; tasks before AND after
    it on the same shard still run."""
    tasks = (
        _square_tasks(prefix)
        + [SweepTask(kind="callable", name=f"{_HERE}:_poison", args={"x": 9})]
        + _square_tasks(suffix)
    )
    results = run_sweep(tasks, workers=1)  # one shard holds them all
    bad = results[len(prefix)]
    assert bad.ok is False
    assert "poisoned task 9" in bad.error
    good = results[: len(prefix)] + results[len(prefix) + 1:]
    assert all(r.ok for r in good)
    assert [r.payload["squared"] for r in good] == [
        x * x for x in prefix + suffix
    ]


@settings(
    max_examples=4, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(n_other=st.integers(min_value=2, max_value=6))
def test_dead_worker_is_isolated_and_reported(n_other):
    """A worker that exits without cleanup takes down only its own
    shard's unreported tasks; the sweep completes and all other shards'
    results arrive intact."""
    crash = SweepTask(kind="callable", name=f"{_HERE}:_hard_crash", args={"x": 0})
    others = _square_tasks(range(n_other))
    # 2 workers -> contiguous shards: the crash task leads shard 0 and
    # kills it; shard 1 must be untouched
    tasks = [crash] + others
    shards = shard_tasks(len(tasks), 2)
    results = run_sweep(tasks, workers=2)

    assert len(results) == len(tasks)
    dead_indices = set(shards[0])
    for res in results:
        if res.index in dead_indices:
            assert res.ok is False
            assert "worker 0" in res.error
            assert "died" in res.error or "without reporting" in res.error
        else:
            assert res.ok, res.error
            assert res.payload["squared"] == (res.index - 1) ** 2
