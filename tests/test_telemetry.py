"""Unit and property tests for the server-side telemetry layer.

Three families:

- *collector mechanics* under a fake clock: bucketing on the ``dt``
  grid, the same-timestamp cache, sparse accumulation, and max-depth
  queue sampling under overlapping ops;
- *timeline queries*: windowed totals, ground-truth fault lookups,
  serialisation round-trips, and the operator summary;
- *conservation properties* (Hypothesis): on seeded workloads with
  arbitrary stall windows and drawn redundancy (none / mirrored /
  erasure-coded), the telemetry export agrees exactly with the pool's
  own counters, and the write-amplification identities hold --
  ``bytes_in + stale == k * payload`` for mirrors,
  ``bytes_in == payload + parity`` for erasure coding.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.harness import SimJob
from repro.iosys.faults import DEGRADE, STALL, FaultSchedule, FaultWindow
from repro.iosys.machine import KiB, MachineConfig, MiB
from repro.iosys.posix import O_CREAT, O_RDWR
from repro.iosys.telemetry import (
    MDS_FIELDS,
    OST_FIELDS,
    TelemetryCollector,
    TelemetryTimeline,
)

N_OSTS = 8


def make_collector(dt=0.5, n_osts=4, **overrides):
    """A collector on a testbox config, driven by a settable fake clock."""
    clock = SimpleNamespace(now=0.0)
    cfg = MachineConfig.testbox(n_osts=n_osts).with_overrides(
        telemetry=True, telemetry_dt=dt, **overrides
    )
    return TelemetryCollector(cfg, clock=clock), clock


# -- collector mechanics -------------------------------------------------------


class TestCollector:
    def test_rejects_nonpositive_dt(self):
        bad = SimpleNamespace(telemetry_dt=0.0, n_osts=4)
        with pytest.raises(ValueError, match="telemetry_dt"):
            TelemetryCollector(bad, clock=SimpleNamespace(now=0.0))
        # the config layer refuses to build such a machine in the first place
        with pytest.raises(ValueError, match="telemetry_dt"):
            MachineConfig.testbox().with_overrides(telemetry_dt=-1.0)

    def test_counters_land_in_time_buckets(self):
        col, clock = make_collector(dt=0.5)
        col.record_write(0, 100.0)
        clock.now = 0.4  # still bucket 0
        col.record_write(0, 50.0)
        clock.now = 1.2  # bucket 2; bucket 1 stays empty
        col.record_write(1, 10.0)
        col.record_read(1, 7.0)
        col.record_rpcs(1, 3)
        tl = col.timeline()
        assert tl.n_buckets == 3
        assert tl.ost["bytes_in"][0, 0] == 150.0
        assert tl.ost["bytes_in"][1].sum() == 0.0
        assert tl.ost["bytes_in"][2, 1] == 10.0
        assert tl.ost["bytes_out"][2, 1] == 7.0
        assert tl.ost["rpcs"][2, 1] == 3.0

    def test_same_timestamp_cache_tracks_the_clock(self):
        """The cache must not pin the bucket after the clock moves on."""
        col, clock = make_collector(dt=1.0)
        clock.now = 0.9
        col.record_write(0, 1.0)
        col.record_write(0, 1.0)  # cache hit, same bucket
        clock.now = 1.0  # bucket boundary exactly
        col.record_write(0, 5.0)
        clock.now = 0.9  # hooks at a revisited timestamp still re-bucket
        col.record_write(0, 2.0)
        tl = col.timeline()
        assert tl.ost["bytes_in"][0, 0] == 4.0
        assert tl.ost["bytes_in"][1, 0] == 5.0

    def test_queue_depth_is_per_bucket_max(self):
        col, clock = make_collector(dt=1.0)
        col.op_begin([0])
        col.op_begin([0])  # live depth 2
        col.op_end([0])
        col.op_begin([0])  # back to 2: bucket max stays 2
        clock.now = 1.5  # live depth carries across buckets
        col.op_begin([0])  # depth 3 observed in bucket 1
        col.op_end([0])
        col.op_end([0])
        col.op_end([0])
        tl = col.timeline()
        assert tl.ost["queue_depth"][0, 0] == 2.0
        assert tl.ost["queue_depth"][1, 0] == 3.0

    def test_queue_depth_drains_between_ops(self):
        col, clock = make_collector(dt=1.0)
        col.op_begin([0, 1])
        col.op_end([0, 1])
        clock.now = 2.0
        col.op_begin([1])  # fully drained: depth restarts at 1
        col.op_end([1])
        tl = col.timeline()
        assert tl.ost["queue_depth"][0, 1] == 1.0
        assert tl.ost["queue_depth"][2, 1] == 1.0

    def test_dict_valued_hooks_attribute_per_device(self):
        col, _ = make_collector(dt=1.0)
        col.record_degraded({1: 100, 2: 50})
        col.record_stale({3: 25})
        col.record_recon(2, 10.0)
        col.record_parity(0, 5.0)
        col.record_retries([1, 3], n=2)
        tl = col.timeline()
        assert tl.ost["degraded_bytes"][0, 1] == 100.0
        assert tl.ost["degraded_bytes"][0, 2] == 50.0
        assert tl.ost["stale_bytes"][0, 3] == 25.0
        assert tl.ost["recon_bytes"][0, 2] == 10.0
        assert tl.ost["parity_bytes"][0, 0] == 5.0
        assert tl.ost["retries"][0, 1] == 2.0
        assert tl.ost["retries"][0, 3] == 2.0

    def test_mds_ops_count_and_queue_max(self):
        col, clock = make_collector(dt=1.0)
        col.record_mds(queue_depth=3)
        col.record_mds(queue_depth=1)
        clock.now = 1.1
        col.record_mds(queue_depth=2)
        tl = col.timeline()
        assert tl.mds["mds_ops"][0] == 2.0
        assert tl.mds["mds_queue"][0] == 3.0
        assert tl.mds["mds_ops"][1] == 1.0
        assert tl.mds["mds_queue"][1] == 2.0

    def test_empty_collector_exports_one_zero_bucket(self):
        col, _ = make_collector()
        tl = col.timeline()
        assert tl.n_buckets == 1
        for name in OST_FIELDS:
            assert tl.ost[name].shape == (1, 4)
            assert tl.ost[name].sum() == 0.0
        for name in MDS_FIELDS:
            assert tl.mds[name].shape == (1,)
        assert tl.is_healthy

    def test_timeline_carries_the_fault_schedule_verbatim(self):
        sched = FaultSchedule.of(
            FaultWindow(STALL, 1.0, 2.0, device=2),
            FaultWindow(DEGRADE, 0.5, 1.5, device=1, factor=3.0),
        )
        col, _ = make_collector(
            dt=0.5, faults=sched, ost_slowdown={3: 4.0}
        )
        tl = col.timeline()
        assert tl.fault_windows == sched.windows
        assert tl.ost_slowdown == {3: 4.0}
        assert not tl.is_healthy


# -- timeline queries ----------------------------------------------------------


@pytest.fixture()
def timeline():
    """Three buckets of hand-placed traffic plus an injected fault mix."""
    col, clock = make_collector(
        dt=1.0,
        faults=FaultSchedule.of(FaultWindow(STALL, 1.0, 2.0, device=2)),
        ost_slowdown={1: 4.0},
    )
    col.record_write(0, 100.0)
    col.op_begin([0])
    col.op_begin([0])
    col.op_end([0])
    col.op_end([0])
    clock.now = 1.5
    col.record_write(0, 40.0)
    col.record_read(2, 30.0)
    col.op_begin([0])
    col.op_end([0])
    clock.now = 2.5
    col.record_read(2, 60.0)
    return col.timeline()


class TestTimeline:
    def test_shape_and_times(self, timeline):
        assert timeline.n_buckets == 3
        assert timeline.span == 3.0
        assert np.array_equal(timeline.times(), [0.0, 1.0, 2.0])

    def test_window_totals_sum_bytes_but_max_queues(self, timeline):
        w = timeline.window_totals(0.0, 2.0, device=0)
        assert w["bytes_in"] == 140.0
        assert w["queue_depth"] == 2.0  # max across buckets, not 3
        whole = timeline.window_totals(0.0, 10.0)
        assert whole["bytes_out"] == 90.0

    def test_device_totals(self, timeline):
        totals = timeline.device_totals()
        assert totals["bytes_in"][0] == 140.0
        assert totals["bytes_out"][2] == 90.0
        assert totals["queue_depth"][0] == 2.0

    def test_faulted_devices_and_overlap(self, timeline):
        assert timeline.faulted_devices(0.0, 3.0) == (2,)
        assert timeline.faulted_devices(2.5, 3.0) == ()
        assert timeline.faulted_devices(0.0, 3.0, kinds=(DEGRADE,)) == ()
        assert timeline.fault_overlap(2, 0.0, 1.5) == pytest.approx(0.5)
        assert timeline.fault_overlap(0, 0.0, 3.0) == 0.0

    def test_slow_devices_threshold(self, timeline):
        assert timeline.slow_devices() == (1,)
        assert timeline.slow_devices(min_factor=5.0) == ()

    def test_utilization_is_clipped_and_rate_scaled(self, timeline):
        util = timeline.utilization()
        assert util.shape == (3, timeline.n_osts)
        assert (util >= 0.0).all()
        rate = max(timeline.ost_write_rate, timeline.ost_read_rate)
        assert util[0, 0] == pytest.approx(100.0 / rate)

    def test_zero_rate_utilization_is_all_zero(self, timeline):
        from dataclasses import replace

        flat = replace(timeline, ost_write_rate=0.0, ost_read_rate=0.0)
        assert flat.utilization().sum() == 0.0

    def test_dict_roundtrip_is_lossless_and_json_safe(self, timeline):
        d = timeline.to_dict()
        json.dumps(d)  # must be serialisable as-is
        back = TelemetryTimeline.from_dict(d)
        assert back.dt == timeline.dt
        assert back.n_osts == timeline.n_osts
        for name in OST_FIELDS:
            assert np.array_equal(back.ost[name], timeline.ost[name])
        for name in MDS_FIELDS:
            assert np.array_equal(back.mds[name], timeline.mds[name])
        assert back.fault_windows == timeline.fault_windows
        assert back.ost_slowdown == timeline.ost_slowdown

    def test_format_summary_names_traffic_and_faults(self, timeline):
        text = timeline.format_summary()
        assert "server telemetry" in text
        assert "OST   0" in text
        assert f"fault: {STALL} on OST 2" in text
        assert "static 4x slowdown on OST 1" in text
        assert "healthy" not in text

    def test_format_summary_healthy(self):
        col, _ = make_collector()
        assert "healthy pool" in col.timeline().format_summary()


# -- queue-depth sampling under real contention --------------------------------


def _contended_worker(ctx, path):
    """Every rank hammers one single-stripe file: all I/O on one OST."""
    if ctx.rank == 0:
        ctx.iosys.set_stripe_count(path, 1)
    yield from ctx.comm.barrier()
    fd = yield from ctx.io.open(path, O_CREAT | O_RDWR)
    for j in range(4):
        yield from ctx.io.pwrite(fd, 256 * KiB, (ctx.rank * 4 + j) * 256 * KiB)
    yield from ctx.io.close(fd)
    return None


def test_queue_depth_sampled_under_contention():
    """With every rank aimed at a one-stripe file, the shared OST must
    show concurrent client ops while the untouched devices show none."""
    machine = MachineConfig.testbox(n_osts=4).with_overrides(telemetry=True)
    job = SimJob(machine, 6, seed=3, placement="packed")
    res = job.run(_contended_worker, "/scratch/contend")
    tl = res.telemetry
    depth = tl.device_totals()["queue_depth"]
    busy = tl.device_totals()["bytes_in"]
    hot = int(np.argmax(busy))
    # all bytes landed on the single striped device
    assert busy[hot] == pytest.approx(busy.sum())
    assert depth[hot] >= 2  # six ranks genuinely overlapped
    for d in range(4):
        if d != hot:
            assert depth[d] == 0.0


# -- conservation properties (Hypothesis) --------------------------------------

RECORD = 256 * KiB
NREC = 8
NTASKS = 4


def _prop_worker(ctx, base):
    path = f"{base}.{ctx.rank:04d}"
    ctx.iosys.set_stripe_count(path, 4)
    fd = yield from ctx.io.open(path, O_CREAT | O_RDWR)
    ctx.io.region("write")
    for j in range(NREC):
        yield from ctx.io.pwrite(fd, RECORD, j * RECORD)
    yield from ctx.comm.barrier()
    ctx.io.region("read")
    for j in range(NREC):
        yield from ctx.io.pread(fd, RECORD, j * RECORD)
    yield from ctx.io.close(fd)
    return None


def _simulate(redundancy, stall_t0, stall_span, device, seed):
    sched = FaultSchedule.of(
        FaultWindow(STALL, stall_t0, stall_t0 + stall_span, device=device)
    )
    machine = MachineConfig.testbox(
        n_osts=N_OSTS,
        fs_bw=1024 * MiB,
        fs_read_bw=1024 * MiB,
        default_stripe_count=4,
        discipline_weights={2: 1.0},
    ).with_overrides(
        faults=sched,
        telemetry=True,
        client_retry=True,
        client_failover=True,
        retry_base_timeout=0.05,
        retry_max_timeout=0.8,
        rpc_resend_interval=2.0,
        failover_probe_interval=0.5,
        **redundancy,
    )
    job = SimJob(machine, NTASKS, seed=seed, placement="packed")
    return job.run(_prop_worker, "/scratch/telprop")


@st.composite
def redundancy_modes(draw):
    mode = draw(st.sampled_from(["plain", "mirror", "ec"]))
    if mode == "mirror":
        return {"replica_count": draw(st.integers(2, 3))}
    if mode == "ec":
        return {"ec_k": 4, "ec_m": draw(st.integers(1, 2))}
    return {}


@given(
    redundancy=redundancy_modes(),
    stall_t0=st.floats(0.0, 1.0, allow_nan=False),
    stall_span=st.floats(0.05, 1.0, allow_nan=False),
    device=st.integers(0, N_OSTS - 1),
    seed=st.integers(0, 1000),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_telemetry_agrees_with_pool_counters(
    redundancy, stall_t0, stall_span, device, seed
):
    """The telemetry export is an exact second set of books: whatever
    redundancy and stall schedule Hypothesis draws, every per-device
    counter matches the pool's own accounting, and the byte totals obey
    the redundancy's write-amplification identity."""
    res = _simulate(redundancy, stall_t0, stall_span, device, seed)
    tl = res.telemetry
    pool = res.iosys.osts
    totals = tl.device_totals()
    assert np.allclose(totals["bytes_in"], pool.bytes_written)
    assert np.allclose(totals["bytes_out"], pool.bytes_read)
    assert np.allclose(totals["rpcs"], pool.rpcs)
    assert np.allclose(totals["recon_bytes"], pool.recon_reads)
    assert totals["stale_bytes"].sum() == pytest.approx(
        float(pool.stale_bytes)
    )
    assert totals["parity_bytes"].sum() == pytest.approx(
        float(pool.parity_bytes)
    )

    payload = NTASKS * NREC * RECORD
    bytes_in = totals["bytes_in"].sum()
    parity = totals["parity_bytes"].sum()
    stale = totals["stale_bytes"].sum()
    if "replica_count" in redundancy:
        # every copy of every byte is written or owed to resync
        k = redundancy["replica_count"]
        assert bytes_in + stale == pytest.approx(k * payload)
        assert parity == 0.0
    elif "ec_k" in redundancy:
        # data bytes land once; everything beyond payload is parity
        assert bytes_in == pytest.approx(payload + parity)
        assert parity > 0.0
        assert stale == 0.0
        # reads either hit the data devices or were reconstructed
        assert totals["bytes_out"].sum() <= payload + 1e-6
    else:
        assert bytes_in == pytest.approx(payload)
        assert parity == 0.0 and stale == 0.0
        assert totals["bytes_out"].sum() == pytest.approx(payload)
    # retries can only be attributed to the one stalled device
    retried = np.nonzero(totals["retries"])[0]
    assert set(retried) <= {device}
