"""Differential tests for the ground-truth oracle.

Every finding kind the client-side diagnosis can produce is exercised on
a scenario whose injected truth is known, and the oracle must CONFIRM
the correctly-attributed finding while CONTRADICTING a deliberately
mis-attributed twin (wrong device, shifted window, or a claim against a
healthy pool).  The scenarios mirror the golden-trace recipes so the
workloads are already pinned byte-for-byte elsewhere.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.apps.harness import SimJob
from repro.ensembles.diagnose import Finding, diagnose
from repro.ensembles.locate import (
    OstSuspect,
    find_masked_faults,
    find_rebuild_pressure,
    find_slow_osts,
    find_transient_faults,
)
from repro.ensembles.oracle import (
    CONFIRMED,
    CONTRADICTED,
    UNVERIFIED,
    verify_finding,
    verify_findings,
    verify_masked,
    verify_rebuilds,
    verify_slow_osts,
    verify_transients,
)
from repro.iosys.faults import STALL, FaultSchedule, FaultWindow
from repro.iosys.machine import MachineConfig, MiB
from repro.iosys.posix import O_CREAT, O_RDWR

SICK = 5
SLOW = 3


def _shared_writer(ctx, nrec, path):
    if ctx.rank == 0 and ctx.iosys.lookup(path) is None:
        ctx.iosys.set_stripe_count(path, ctx.machine.n_osts)
        fd = yield from ctx.io.open(path, O_CREAT | O_RDWR)
        yield from ctx.comm.barrier()
    else:
        yield from ctx.comm.barrier()
        fd = yield from ctx.io.open(path, O_CREAT | O_RDWR)
    base = ctx.rank * nrec * MiB
    for j in range(nrec):
        yield from ctx.io.pwrite(fd, MiB, base + j * MiB)
    yield from ctx.io.close(fd)
    return None


def _fpt_worker(ctx, nrec, base):
    path = f"{base}.{ctx.rank:04d}"
    ctx.iosys.set_stripe_count(path, 4)
    fd = yield from ctx.io.open(path, O_CREAT | O_RDWR)
    ctx.io.region("write")
    for j in range(nrec):
        yield from ctx.io.pwrite(fd, MiB, j * MiB)
    yield from ctx.comm.barrier()
    ctx.io.region("read")
    for j in range(nrec):
        yield from ctx.io.pread(fd, MiB, j * MiB)
    yield from ctx.io.close(fd)
    return None


@pytest.fixture(scope="module")
def stall_run():
    """Slow OST + transient stall, shared-file writes, telemetry on."""
    machine = MachineConfig.testbox(
        n_osts=16,
        fs_bw=2048 * MiB,
        discipline_weights={4: 1.0},
        ost_slowdown={SLOW: 4.0},
    ).with_overrides(
        faults=FaultSchedule.of(FaultWindow(STALL, 0.3, 0.9, device=SICK)),
        client_retry=True,
        telemetry=True,
    )
    job = SimJob(machine, 8, seed=13, placement="packed")
    return job.run(_shared_writer, 60, "/scratch/oracle.dat")


@pytest.fixture(scope="module")
def healthy_run():
    machine = MachineConfig.testbox(
        n_osts=16,
        fs_bw=2048 * MiB,
        discipline_weights={4: 1.0},
    ).with_overrides(client_retry=True, telemetry=True)
    job = SimJob(machine, 8, seed=13, placement="packed")
    return job.run(_shared_writer, 60, "/scratch/oracle.dat")


def _mirror_machine(**extra):
    return MachineConfig.testbox(
        n_osts=8,
        fs_bw=1024 * MiB,
        fs_read_bw=1024 * MiB,
        default_stripe_count=4,
        discipline_weights={2: 1.0},
    ).with_overrides(
        client_retry=True,
        retry_base_timeout=0.05,
        retry_max_timeout=0.8,
        replica_count=2,
        failover_probe_interval=0.5,
        telemetry=True,
        **extra,
    )


def _read_phase_stall(res, device):
    """A stall covering the middle of this run's (healthy) read phase, so
    only reads steer around it and every failover event attributes to the
    device the server really stalled."""
    reads = res.trace.filter(ops=["pread"])
    t0 = float(reads.starts.min())
    span = float(reads.ends.max()) - t0
    return FaultSchedule.of(
        FaultWindow(
            STALL, t0 + 0.15 * span, t0 + 0.55 * span, device=device
        )
    )


@pytest.fixture(scope="module")
def mirror_run():
    """2-way mirrored file-per-task records with a read-phase stall."""
    probe = SimJob(_mirror_machine(), 4, seed=17, placement="packed").run(
        _fpt_worker, 12, "/scratch/mirror.dat"
    )
    machine = _mirror_machine(faults=_read_phase_stall(probe, 2))
    job = SimJob(machine, 4, seed=17, placement="packed")
    return job.run(_fpt_worker, 12, "/scratch/mirror.dat")


@pytest.fixture(scope="module")
def ec_run():
    """4+1 erasure-coded file-per-task records with a read-phase stall."""
    machine = MachineConfig.testbox(
        n_osts=8,
        fs_bw=1024 * MiB,
        fs_read_bw=1024 * MiB,
        default_stripe_count=4,
        discipline_weights={2: 1.0},
    ).with_overrides(
        faults=FaultSchedule.of(FaultWindow(STALL, 0.10, 0.60, device=2)),
        client_retry=True,
        retry_base_timeout=0.05,
        retry_max_timeout=0.8,
        ec_k=4,
        ec_m=1,
        failover_probe_interval=0.5,
        telemetry=True,
    )

    def worker(ctx, nrec, base):
        path = f"{base}.{ctx.rank:04d}"
        ctx.iosys.set_stripe_count(path, 4)
        fd = yield from ctx.io.open(path, O_CREAT | O_RDWR)
        ctx.io.region("write")
        for j in range(nrec):
            yield from ctx.io.pwrite(fd, 4 * MiB, j * 4 * MiB)
        yield from ctx.comm.barrier()
        ctx.io.region("read")
        for j in range(nrec * 4):
            yield from ctx.io.pread(fd, MiB, j * MiB)
        yield from ctx.io.close(fd)
        return None

    job = SimJob(machine, 4, seed=17, placement="packed")
    return job.run(worker, 3, "/scratch/ecoracle.dat")


def _findings(res, path, codes):
    f = res.iosys.lookup(path)
    lay = f.erasure or f.layout
    return [
        x
        for x in diagnose(res.trace.filter(path=path), layout=lay)
        if x.code in codes
    ]


# -- transient-fault ------------------------------------------------------------

class TestTransientFault:
    def test_correct_finding_confirmed(self, stall_run):
        findings = _findings(
            stall_run, "/scratch/oracle.dat", ("transient-fault",)
        )
        assert findings, "diagnosis should see the stall"
        report = verify_findings(findings, stall_run.telemetry)
        assert report.all_confirmed
        devs = {v.device for v in report.verdicts if v.verdict == CONFIRMED}
        assert SICK in devs

    def test_locate_transients_confirmed(self, stall_run):
        lay = stall_run.iosys.lookup("/scratch/oracle.dat").layout
        faults = find_transient_faults(stall_run.trace, lay)
        assert any(f.ost == SICK for f in faults)
        report = verify_transients(
            [f for f in faults if f.ost == SICK], stall_run.telemetry
        )
        assert report.all_confirmed

    def test_wrong_device_contradicted(self, stall_run):
        finding = _findings(
            stall_run, "/scratch/oracle.dat", ("transient-fault",)
        )[0]
        wrong = replace(
            finding,
            evidence={**finding.evidence, "device": float((SICK + 7) % 16)},
        )
        v = verify_finding(wrong, stall_run.telemetry)
        assert v.verdict == CONTRADICTED
        assert v.device_match is False

    def test_shifted_window_contradicted(self, stall_run):
        finding = _findings(
            stall_run, "/scratch/oracle.dat", ("transient-fault",)
        )[0]
        shifted = replace(
            finding,
            evidence={
                **finding.evidence,
                "t_start": finding.evidence["t_end"] + 50.0,
                "t_end": finding.evidence["t_end"] + 60.0,
            },
        )
        v = verify_finding(shifted, stall_run.telemetry)
        assert v.verdict == CONTRADICTED
        assert v.window_match is False

    def test_claim_against_healthy_pool_contradicted(self, healthy_run):
        fabricated = Finding(
            code="transient-fault",
            severity=0.9,
            message="fabricated",
            recommendation="",
            evidence={"device": float(SICK), "t_start": 0.2, "t_end": 0.6},
        )
        v = verify_finding(fabricated, healthy_run.telemetry)
        assert v.verdict == CONTRADICTED
        assert "healthy" in v.detail

    def test_shape_finding_unverified(self, stall_run):
        shape = Finding(
            code="broad-right-shoulder",
            severity=0.5,
            message="shape",
            recommendation="",
            evidence={},
        )
        v = verify_finding(shape, stall_run.telemetry)
        assert v.verdict == UNVERIFIED


# -- slow-ost -------------------------------------------------------------------

class TestSlowOst:
    def test_scan_confirmed(self, stall_run):
        lay = stall_run.iosys.lookup("/scratch/oracle.dat").layout
        suspects = find_slow_osts(stall_run.trace, lay)
        report = verify_slow_osts(suspects, stall_run.telemetry)
        assert report.all_confirmed
        devs = {v.device for v in report.verdicts if v.verdict == CONFIRMED}
        assert SLOW in devs

    def test_false_suspect_contradicted(self, stall_run):
        bogus = OstSuspect(
            ost=(SLOW + 5) % 16,
            n_events=30,
            median=1.0,
            pool_median=0.2,
            slowdown=5.0,
            is_suspect=True,
        )
        report = verify_slow_osts([bogus], stall_run.telemetry)
        assert report.n_contradicted >= 1
        assert any(
            v.device == bogus.ost for v in report.contradictions
        )

    def test_missed_slow_device_contradicted(self, stall_run):
        # the direction the client cannot self-check: the server slowed
        # OST 3 but the (empty) scan never flagged it
        report = verify_slow_osts([], stall_run.telemetry)
        assert report.n_contradicted == 1
        assert report.contradictions[0].device == SLOW
        assert "missed" in report.contradictions[0].detail

    def test_healthy_scan_clean(self, healthy_run):
        lay = healthy_run.iosys.lookup("/scratch/oracle.dat").layout
        suspects = find_slow_osts(healthy_run.trace, lay)
        report = verify_slow_osts(suspects, healthy_run.telemetry)
        assert report.n_contradicted == 0


# -- failover-masked-fault ------------------------------------------------------

class TestMaskedFault:
    def test_masked_fault_confirmed(self, mirror_run):
        confirmed_devices = set()
        for path, f in sorted(mirror_run.iosys._files.items()):
            masked = find_masked_faults(
                mirror_run.trace.filter(path=path), f.layout
            )
            if not masked:
                continue
            report = verify_masked(masked, mirror_run.telemetry)
            assert report.all_confirmed, report.format()
            confirmed_devices |= {
                v.device for v in report.verdicts if v.verdict == CONFIRMED
            }
        assert confirmed_devices == {2}

    def test_diagnose_finding_confirmed(self, mirror_run):
        reports = []
        for path, f in sorted(mirror_run.iosys._files.items()):
            findings = [
                x
                for x in diagnose(
                    mirror_run.trace.filter(path=path), layout=f.layout
                )
                if x.code == "failover-masked-fault"
            ]
            if findings:
                reports.append(
                    verify_findings(findings, mirror_run.telemetry)
                )
        assert reports and all(r.all_confirmed for r in reports)

    def test_wrong_device_contradicted(self, mirror_run):
        for path, f in sorted(mirror_run.iosys._files.items()):
            masked = find_masked_faults(
                mirror_run.trace.filter(path=path), f.layout
            )
            if masked:
                wrong = replace(masked[0], ost=(masked[0].ost + 3) % 8)
                report = verify_masked([wrong], mirror_run.telemetry)
                assert report.n_contradicted == 1
                return
        pytest.fail("no masked faults located")


# -- ec-degraded / rebuild-pressure --------------------------------------------

class TestEcDegraded:
    def test_ec_finding_confirmed(self, ec_run):
        reports = []
        devices = set()
        for path, f in sorted(ec_run.iosys._files.items()):
            findings = [
                x
                for x in diagnose(
                    ec_run.trace.filter(path=path), layout=f.erasure
                )
                if x.code == "ec-degraded"
            ]
            if findings:
                r = verify_findings(findings, ec_run.telemetry)
                reports.append(r)
                devices |= {
                    v.device for v in r.verdicts if v.verdict == CONFIRMED
                }
        assert reports and all(r.all_confirmed for r in reports)
        assert 2 in devices

    def test_rebuild_pressure_confirmed(self, ec_run):
        located = []
        for path, f in sorted(ec_run.iosys._files.items()):
            located.extend(
                find_rebuild_pressure(
                    ec_run.trace.filter(path=path), f.erasure or f.layout
                )
            )
        assert any(r.ost == 2 for r in located)
        report = verify_rebuilds(
            [r for r in located if r.ost == 2], ec_run.telemetry
        )
        assert report.all_confirmed

    def test_wrong_device_contradicted(self, ec_run):
        for path, f in sorted(ec_run.iosys._files.items()):
            located = find_rebuild_pressure(
                ec_run.trace.filter(path=path), f.erasure or f.layout
            )
            if located:
                wrong = replace(located[0], ost=(located[0].ost + 3) % 8)
                report = verify_rebuilds([wrong], ec_run.telemetry)
                assert report.n_contradicted == 1
                return
        pytest.fail("no rebuild pressure located")


# -- report mechanics -----------------------------------------------------------

class TestReport:
    def test_contradictions_sort_first(self, stall_run):
        findings = _findings(
            stall_run, "/scratch/oracle.dat", ("transient-fault",)
        )
        wrong = replace(
            findings[0],
            evidence={**findings[0].evidence, "device": 14.0},
        )
        report = verify_findings(
            findings + [wrong], stall_run.telemetry
        )
        assert report.verdicts[0].verdict == CONTRADICTED
        assert not report.all_confirmed
        assert report.n_confirmed >= 1

    def test_empty_report_not_all_confirmed(self, stall_run):
        report = verify_findings([], stall_run.telemetry)
        assert not report.all_confirmed
        assert report.n_confirmed == 0

    def test_format_mentions_verdicts(self, stall_run):
        findings = _findings(
            stall_run, "/scratch/oracle.dat", ("transient-fault",)
        )
        text = verify_findings(findings, stall_run.telemetry).format()
        assert "confirmed" in text and "CONFIRMED" in text
